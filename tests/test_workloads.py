"""Tests for the workload trace generators."""

import pytest

from repro.core import DynamicOffloadPolicy
from repro.isa import GatherOp, LoadOp, UpdateOp, count_kinds
from repro.workloads import (
    ALL_WORKLOADS,
    BENCHMARKS,
    MICROBENCHMARKS,
    WorkloadConfig,
    make_workload,
    split_range,
    workload_names,
)
from repro.workloads.graph import generate_power_law_graph, generate_sparse_matrix
from repro.workloads.lud import LUDWorkload

from helpers import tiny_params


def test_registry_contains_paper_workloads():
    assert set(ALL_WORKLOADS) == set(BENCHMARKS) | set(MICROBENCHMARKS)
    assert set(workload_names(micro=True)) == set(MICROBENCHMARKS)
    assert set(workload_names(micro=False)) == set(BENCHMARKS)
    with pytest.raises(ValueError):
        make_workload("nonexistent")


def test_split_range_covers_everything():
    total = 101
    covered = []
    for tid in range(4):
        start, end = split_range(total, 4, tid)
        covered.extend(range(start, end))
    assert covered == list(range(total))
    with pytest.raises(ValueError):
        split_range(10, 0, 0)
    with pytest.raises(ValueError):
        split_range(10, 4, 9)


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_workload_generates_both_modes(name, tiny_config):
    workload = make_workload(name, tiny_config, **tiny_params(name))
    baseline = workload.generate("baseline")
    active = workload.generate("active")
    assert baseline.num_threads == tiny_config.num_threads
    assert active.num_threads == tiny_config.num_threads
    # The baseline never offloads; the active variant always does.
    assert baseline.operations_of(UpdateOp) == 0
    assert active.operations_of(UpdateOp) > 0
    assert active.operations_of(GatherOp) > 0
    assert baseline.operations_of(LoadOp) > 0
    # Expected reduction results exist for verification.
    assert active.expected_results
    with pytest.raises(ValueError):
        workload.generate("bogus")


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_workload_metadata_and_determinism(name, tiny_config):
    w1 = make_workload(name, WorkloadConfig(num_threads=2, seed=11), **tiny_params(name))
    w2 = make_workload(name, WorkloadConfig(num_threads=2, seed=11), **tiny_params(name))
    p1, p2 = w1.generate("active"), w2.generate("active")
    assert p1.metadata == p2.metadata
    assert p1.total_operations() == p2.total_operations()
    assert p1.expected_results == p2.expected_results


def test_micro_expected_sum_matches_values(tiny_config):
    workload = make_workload("mac", tiny_config, array_elements=256)
    program = workload.generate("active")
    (target, expected), = program.expected_results.items()
    manual = sum(a * b for a, b in zip(workload.values[0], workload.values[1]))
    assert expected == pytest.approx(manual)
    assert target == workload.target


def test_rand_variants_shuffle_access_order(tiny_config):
    seq = make_workload("reduce", tiny_config, array_elements=512)
    rand = make_workload("rand_reduce", tiny_config, array_elements=512)
    seq_addrs = [op.addr for op in seq.generate("baseline").threads[0]
                 if isinstance(op, LoadOp)]
    rand_addrs = [op.addr for op in rand.generate("baseline").threads[0]
                  if isinstance(op, LoadOp)]
    assert sorted(seq_addrs) == seq_addrs
    assert sorted(rand_addrs) != rand_addrs
    assert sorted(rand_addrs) == seq_addrs


def test_lud_adaptive_mixes_host_and_offload(tiny_config):
    params = tiny_params("lud")
    always = LUDWorkload(WorkloadConfig(num_threads=2), **params)
    adaptive = LUDWorkload(WorkloadConfig(num_threads=2),
                           offload_policy=DynamicOffloadPolicy(), **params)
    full = always.generate("active")
    mixed = adaptive.generate("active")
    assert 0 < mixed.operations_of(UpdateOp) < full.operations_of(UpdateOp)
    assert mixed.operations_of(LoadOp) > full.operations_of(LoadOp)
    assert mixed.metadata["adaptive"] is True


def test_backprop_has_non_offloaded_phase(tiny_config):
    workload = make_workload("backprop", tiny_config, **tiny_params("backprop"))
    active = workload.generate("active")
    kinds = count_kinds(active.threads[0])
    # The weight-adjustment phase stays on the host even in active mode.
    assert kinds.get("LoadOp", 0) > 0
    assert kinds.get("StoreOp", 0) > 0
    assert kinds.get("BarrierOp", 0) == 1


def test_pagerank_uses_store_class_updates(tiny_config):
    workload = make_workload("pagerank", tiny_config, **tiny_params("pagerank"))
    active = workload.generate("active")
    opcodes = {op.opcode for t in active.threads for op in t if isinstance(op, UpdateOp)}
    assert {"mac", "abs_diff", "mov", "const_assign"} <= opcodes


def test_power_law_graph_properties():
    graph = generate_power_law_graph(200, avg_degree=6, seed=1)
    assert graph.num_vertices == 200
    assert graph.num_edges > 200
    degrees = sorted((graph.out_degree(v) for v in range(200)), reverse=True)
    # Skewed degree distribution: the hubs dominate the median vertex.
    assert degrees[0] >= 4 * degrees[100]
    incoming = graph.in_edges()
    assert sum(len(x) for x in incoming) == graph.num_edges
    with pytest.raises(ValueError):
        generate_power_law_graph(1)


def test_sparse_matrix_properties():
    matrix = generate_sparse_matrix(32, 64, density=0.25, seed=2)
    assert matrix.num_rows == 32 and matrix.num_cols == 64
    assert matrix.num_nonzeros == 32 * 16
    cols, vals = matrix.row(5)
    assert len(cols) == len(vals) == 16
    assert cols == sorted(cols)
    assert all(0 <= c < 64 for c in cols)
    with pytest.raises(ValueError):
        generate_sparse_matrix(4, 4, density=0.0)


def test_workload_param_override_and_scale():
    small = make_workload("reduce", WorkloadConfig(num_threads=2, scale=0.5))
    explicit = make_workload("reduce", WorkloadConfig(num_threads=2), array_elements=100)
    assert explicit.num_elements == 100
    assert small.num_elements == 8 * 1024
