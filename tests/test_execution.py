"""Sharded execution backend: registry knobs, bit-identity, windows, guards.

The sharded backend's whole contract is *bit-identity*: partitioning the cube
network across worker processes and advancing them in conservative time
windows must reproduce the serial run exactly — final time, executed-event
count, and the full stats snapshot (counters, gauges, histograms) down to the
last ulp.  The tests here hold that contract three ways:

* against the checked-in golden digests (the same constants
  ``test_golden_determinism`` holds the serial kernel to), across shard
  counts that do and do not divide the cube count, including the fixed-seed
  degraded (fault-injected) cell;
* against a fresh serial run under Hypothesis-drawn topology, failure-rate,
  seed and shard-count combinations (the lockstep harness);
* at the unit level: the window-edge dispatch rule (edge-exclusive, ties
  across a shard cut resolved by the shipped sender keys) and the contiguous
  shard-assignment function.

The resolution knobs (``--execution``/``$REPRO_EXECUTION``,
``--shards``/``$REPRO_SHARDS``), the worker-oversubscription guard, and the
single-process degradation path are covered alongside.
"""

import os
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hmc.config import shard_cube_slices
from repro.sim import Simulator
from repro.sim.sharding import ShardEventQueue, WindowRunner
from repro.system import make_system_config, normalize_workers, run_workload
from repro.system.builder import build_system
from repro.system.execution import (DEFAULT_SHARDS, EXECUTION_BACKENDS,
                                    INPROCESS_ENV, resolve_execution,
                                    resolve_shards, run_sharded_program)
from repro.workloads import WorkloadConfig, make_workload

from test_golden_determinism import (DEGRADED_GOLDEN, GOLDEN, TINY_PAGERANK,
                                     snapshot_digest)


def _tiny_program(config):
    wconfig = WorkloadConfig()
    wconfig.num_threads = 4
    workload = make_workload("pagerank", wconfig, **TINY_PAGERANK)
    mode = "active" if config.kind.uses_active_routing else "baseline"
    return workload.generate(mode)


def _serial_system(config):
    system = build_system(config)
    system.cmp.load_program(_tiny_program(config))
    system.cmp.start()
    system.sim.run_until_idle()
    return system


def _sharded_system(config, shards):
    return run_sharded_program(config, _tiny_program(config),
                               max_events=80_000_000, shards=shards)


# ---------------------------------------------------------------------------
# Registry and resolution knobs
# ---------------------------------------------------------------------------

def test_execution_backend_registry():
    assert set(EXECUTION_BACKENDS) == {"serial", "sharded"}


def test_resolve_execution_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_EXECUTION", raising=False)
    assert resolve_execution() == "serial"
    monkeypatch.setenv("REPRO_EXECUTION", "sharded")
    assert resolve_execution() == "sharded"
    assert resolve_execution("serial") == "serial"  # explicit beats the env
    assert resolve_execution(" Sharded ") == "sharded"
    with pytest.raises(ValueError, match="serial"):
        resolve_execution("threads")
    monkeypatch.setenv("REPRO_EXECUTION", "nonsense")
    with pytest.raises(ValueError):
        resolve_execution()


def test_resolve_shards_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    config = make_system_config("ARF-tid")
    assert resolve_shards(config) == DEFAULT_SHARDS
    monkeypatch.setenv("REPRO_SHARDS", "3")
    assert resolve_shards(config) == 3
    assert resolve_shards(config, 4) == 4           # explicit beats the env
    field = make_system_config("ARF-tid", shards=5)
    assert resolve_shards(field) == 5               # config field beats the env
    monkeypatch.setenv("REPRO_SHARDS", "garbage")
    with pytest.warns(RuntimeWarning, match="REPRO_SHARDS"):
        assert resolve_shards(config) == DEFAULT_SHARDS
    monkeypatch.delenv("REPRO_SHARDS")
    with pytest.raises(ValueError, match="shard"):
        resolve_shards(config, config.hmc_net.num_cubes + 1)


def test_execution_folds_into_label_only_when_non_default():
    assert make_system_config("ARF-tid").label == "ARF-tid"
    assert make_system_config("ARF-tid", execution="serial").label == "ARF-tid"
    assert (make_system_config("ARF-tid", execution="sharded", shards=2).label
            == "ARF-tid%sharded2")


# ---------------------------------------------------------------------------
# Shard assignment
# ---------------------------------------------------------------------------

def test_shard_slices_contiguous_when_count_does_not_divide():
    slices = shard_cube_slices(16, 3)
    assert [cube for cube_slice in slices for cube in cube_slice] == list(range(16))
    sizes = [len(cube_slice) for cube_slice in slices]
    assert max(sizes) - min(sizes) <= 1
    assert sizes == sorted(sizes, reverse=True)  # remainder on leading shards
    assert all(len(cube_slice) >= 1 for cube_slice in shard_cube_slices(5, 5))
    with pytest.raises(ValueError, match="at least one cube"):
        shard_cube_slices(4, 5)
    with pytest.raises(ValueError, match=">= 1"):
        shard_cube_slices(4, 0)


# ---------------------------------------------------------------------------
# Window dispatch unit tests
# ---------------------------------------------------------------------------

def _shard_sim(rank=0):
    sim = Simulator(events=ShardEventQueue(rank))
    return sim, WindowRunner(sim)


def test_window_edge_is_exclusive():
    sim, runner = _shard_sim()
    fired = []
    sim.schedule(5.9, lambda: fired.append(5.9))
    sim.schedule(6.0, lambda: fired.append(6.0))
    sim.schedule(6.1, lambda: fired.append(6.1))
    runner.run_to(6.0)
    # The edge belongs to the next epoch, and a quiet shard must not
    # manufacture clock progress: now parks on the last *executed* event.
    assert fired == [5.9]
    assert sim.now == 5.9
    assert sim.events.peek_time() == 6.0
    runner.run_to(12.0)
    assert fired == [5.9, 6.0, 6.1]
    assert runner.executed == 3
    assert sim.now == 6.1


def test_cross_cut_ties_follow_sender_keys():
    sim, runner = _shard_sim(rank=1)
    order = []
    events = sim.events
    # Three arrivals at t=10.0.  The local one's key is founded at push time
    # (now=0, local root counter 0, rank 1).  The two boundary events carry
    # their rank-0 sender keys verbatim; the serial run would have dispatched
    # them in *push order*, which the key's scheduled-at head and the
    # (rank, uid) tail reproduce regardless of arrival order here.
    sim.schedule(10.0, lambda: order.append("local"))
    events.push_with_key(10.0, (0.0, (), 0, 0, 0, 0),
                         lambda: order.append("remote-early"))
    events.push_with_key(10.0, (5.0, (), 3, 3, 0, 3),
                         lambda: order.append("remote-late"))
    runner.run_to(11.0)
    # remote-early ties with local through every hierarchical field and wins
    # on rank (0 < 1); remote-late was pushed at t=5.0 and sorts last.
    assert order == ["remote-early", "local", "remote-late"]


def test_dispatch_children_keyed_under_parent_in_program_order():
    sim, runner = _shard_sim()
    order = []

    def parent_a():
        sim.schedule(4.0, lambda: order.append("a0"))
        sim.schedule(4.0, lambda: order.append("a1"))

    def parent_b():
        sim.schedule(2.0, lambda: order.append("b0"))

    sim.schedule(2.0, parent_a)
    sim.schedule(2.0, parent_b)
    runner.run_to(10.0)
    # Both parents fire at t=2 (push order: a then b).  b's child lands at
    # t=4; a's two children tie at t=6 and must dispatch in program order —
    # same parent token, child indices 0 then 1.
    assert order == ["b0", "a0", "a1"]


# ---------------------------------------------------------------------------
# Golden bit-identity: serial goldens reproduced by the sharded backend
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("kind", ["HMC", "ART", "ARF-tid", "ARF-addr"])
def test_sharded_reproduces_serial_goldens(kind, shards):
    system = _sharded_system(make_system_config(kind), shards)
    cycles, events, digest = GOLDEN[kind]
    assert system.sim.now == cycles
    assert system.sim.executed_events == events
    assert snapshot_digest(system.sim.stats) == digest


def test_sharded_non_dividing_shard_count_matches_golden():
    # 3 shards over 16 cubes: the 6/5/5 assignment must not move a bit.
    system = _sharded_system(make_system_config("ARF-tid"), 3)
    cycles, events, digest = GOLDEN["ARF-tid"]
    assert system.sim.now == cycles
    assert system.sim.executed_events == events
    assert snapshot_digest(system.sim.stats) == digest


@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_degraded_golden_fixed_failure_seed(shards):
    config = make_system_config("ARF-tid", routing="resilient",
                                failure_rate=10.0, failure_seed=7)
    system = _sharded_system(config, shards)
    cycles, events, digest = DEGRADED_GOLDEN
    assert system.sim.now == cycles
    assert system.sim.executed_events == events
    assert snapshot_digest(system.sim.stats) == digest
    # The run did degrade: every shard's injector replica fired in lockstep.
    assert system.sim.stats.snapshot()["network.dropped"] > 0


def test_dram_baseline_silently_falls_back_to_serial():
    # The DRAM baseline has no cube network to shard; a sweep mixing it into
    # a sharded batch must run it serially without noise or failure.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result = run_workload("DRAM", "pagerank", num_threads=4,
                              execution="sharded", **TINY_PAGERANK)
    assert result.events_executed == GOLDEN["DRAM"][1]


# ---------------------------------------------------------------------------
# Hypothesis lockstep: serial vs sharded over random draws
# ---------------------------------------------------------------------------

@settings(max_examples=4, deadline=None)
@given(topology=st.sampled_from(["dragonfly", "mesh", "torus"]),
       failure_rate=st.sampled_from([0.0, 8.0, 25.0]),
       failure_seed=st.integers(min_value=0, max_value=2 ** 16 - 1),
       shards=st.integers(min_value=2, max_value=4))
def test_lockstep_serial_vs_sharded(topology, failure_rate, failure_seed,
                                    shards):
    net = dict(topology=topology, num_cubes=16)
    if failure_rate:
        net.update(routing="resilient", failure_rate=failure_rate,
                   failure_seed=failure_seed)
    config = make_system_config("ARF-tid", **net)
    serial = _serial_system(config)
    # The in-process driver keeps Hypothesis' many examples spawn-free; it
    # runs the identical window/barrier/merge machinery, and the multiprocess
    # path is held to the same goldens by the tests above.
    previous = os.environ.get(INPROCESS_ENV)
    os.environ[INPROCESS_ENV] = "1"
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            sharded = _sharded_system(config, shards)
    finally:
        if previous is None:
            os.environ.pop(INPROCESS_ENV, None)
        else:
            os.environ[INPROCESS_ENV] = previous
    assert sharded.sim.now == serial.sim.now
    assert sharded.sim.executed_events == serial.sim.executed_events
    # One digest covers every counter, gauge and histogram — including the
    # network.* fabric totals the figures read as network_stats.
    assert (snapshot_digest(sharded.sim.stats)
            == snapshot_digest(serial.sim.stats))


# ---------------------------------------------------------------------------
# Guards and degradation
# ---------------------------------------------------------------------------

def test_normalize_workers_oversubscription_guard():
    cpus = os.cpu_count() or 1
    with pytest.warns(RuntimeWarning, match="oversubscribe"):
        capped = normalize_workers(cpus * 4, shards=4)
    assert capped == max(1, cpus // 5)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        # Serial jobs (shards 0/1) keep the old behavior, warning-free, and
        # a request that already fits is passed through untouched.
        assert normalize_workers(2, shards=0) == 2
        assert normalize_workers(2, shards=1) == 2
        assert normalize_workers(1, shards=4) == 1


def test_inprocess_fallback_warns_once_and_matches_goldens(monkeypatch):
    monkeypatch.setenv(INPROCESS_ENV, "1")
    with pytest.warns(RuntimeWarning, match="single-process"):
        system = _sharded_system(make_system_config("HMC"), 2)
    cycles, events, digest = GOLDEN["HMC"]
    assert system.sim.now == cycles
    assert system.sim.executed_events == events
    assert snapshot_digest(system.sim.stats) == digest
