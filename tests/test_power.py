"""Unit tests for the energy/power/EDP model."""

import pytest

from repro.power import EnergyBreakdown, EnergyModel
from repro.sim import Simulator, StatsRegistry


def test_energy_classification_by_prefix():
    stats = StatsRegistry()
    stats.add("cache.energy_pj", 1000.0)
    stats.add("noc.energy_pj", 500.0)
    stats.add("dram.energy_pj", 2000.0)
    stats.add("hmc.cube3.vault1.energy_pj", 700.0)
    stats.add("link.0->1.energy_pj", 300.0)
    stats.add("network.unrelated_counter", 99.0)      # not energy, ignored
    model = EnergyModel(stats)
    assert model.cache_energy_j() == pytest.approx(1500e-12)
    assert model.memory_energy_j() == pytest.approx(2700e-12)
    assert model.network_energy_j() == pytest.approx(300e-12)


def test_breakdown_power_and_edp():
    breakdown = EnergyBreakdown(cache_j=1e-6, memory_j=2e-6, network_j=1e-6, runtime_s=2e-3)
    assert breakdown.total_j == pytest.approx(4e-6)
    assert breakdown.power_w == pytest.approx(2e-3)
    assert breakdown.edp == pytest.approx(8e-9)
    as_dict = breakdown.as_dict()
    assert as_dict["total_j"] == pytest.approx(4e-6)


def test_normalization_to_baseline():
    baseline = EnergyBreakdown(cache_j=2e-6, memory_j=2e-6, network_j=0.0, runtime_s=1e-3)
    other = EnergyBreakdown(cache_j=1e-6, memory_j=1e-6, network_j=2e-6, runtime_s=0.5e-3)
    normalized = other.normalized_to(baseline)
    assert normalized["total"] == pytest.approx(1.0)
    assert normalized["cache"] == pytest.approx(0.25)
    assert normalized["edp"] == pytest.approx((4e-6 * 0.5e-3) / (4e-6 * 1e-3))


def test_from_simulator_and_runtime_conversion():
    sim = Simulator(cpu_freq_ghz=2.0)
    sim.stats.add("dram.energy_pj", 1e6)
    model = EnergyModel.from_simulator(sim)
    breakdown = model.breakdown(runtime_cycles=2e9, cpu_freq_ghz=2.0)
    assert breakdown.runtime_s == pytest.approx(1.0)
    assert breakdown.memory_j == pytest.approx(1e-6)
    assert breakdown.power_w == pytest.approx(1e-6)


def test_zero_runtime_power_is_zero():
    breakdown = EnergyBreakdown(1e-9, 1e-9, 1e-9, runtime_s=0.0)
    assert breakdown.power_w == 0.0
