"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_workload_params, build_parser, main


def test_parse_workload_params():
    params = _parse_workload_params(["array_elements=256", "density=0.5", "name=web"])
    assert params == {"array_elements": 256, "density": 0.5, "name": "web"}
    with pytest.raises(SystemExit):
        _parse_workload_params(["oops"])


def test_parser_rejects_unknown_config():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--config", "XYZ"])
    args = parser.parse_args(["run", "--config", "ARF-addr", "--workload", "reduce"])
    assert args.config == "ARF-addr"
    args = parser.parse_args(["report", "--scale", "tiny"])
    assert args.scale == "tiny"


def test_cli_run_command(capsys):
    exit_code = main(["run", "--config", "ARF-tid", "--workload", "reduce",
                      "--threads", "2", "--param", "array_elements=256"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "reduce on ARF-tid" in out
    assert "cycles" in out and "EDP" in out
    assert "flows verified" in out


def test_cli_run_baseline_config(capsys):
    exit_code = main(["run", "--config", "DRAM", "--workload", "reduce",
                      "--threads", "2", "--param", "array_elements=256"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "update round-trip" not in out
