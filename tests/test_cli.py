"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import _parse_workload_params, build_parser, main


def test_parse_workload_params():
    params = _parse_workload_params(["array_elements=256", "density=0.5", "name=web"])
    assert params == {"array_elements": 256, "density": 0.5, "name": "web"}
    with pytest.raises(SystemExit):
        _parse_workload_params(["oops"])


def test_parser_rejects_unknown_config():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--config", "XYZ"])
    args = parser.parse_args(["run", "--config", "ARF-addr", "--workload", "reduce"])
    assert args.config == "ARF-addr"
    args = parser.parse_args(["report", "--scale", "tiny"])
    assert args.scale == "tiny"


def test_cli_run_command(capsys):
    exit_code = main(["run", "--config", "ARF-tid", "--workload", "reduce",
                      "--threads", "2", "--param", "array_elements=256"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "reduce on ARF-tid" in out
    assert "cycles" in out and "EDP" in out
    assert "flows verified" in out


def test_cli_run_baseline_config(capsys):
    exit_code = main(["run", "--config", "DRAM", "--workload", "reduce",
                      "--threads", "2", "--param", "array_elements=256"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "update round-trip" not in out


def test_parser_report_and_prefetch_suite_options():
    parser = build_parser()
    args = parser.parse_args(["report", "--scale", "tiny", "--workers", "0",
                              "--cache-dir", "/tmp/x", "--no-cache"])
    assert args.workers == 0 and args.cache_dir == "/tmp/x" and args.no_cache
    args = parser.parse_args(["prefetch", "--figures", "speedup", "latency",
                              "--workloads", "mac"])
    assert args.figures == ["speedup", "latency"]
    assert args.workloads == ["mac"]
    with pytest.raises(SystemExit):
        parser.parse_args(["prefetch", "--figures", "figure-9000"])


def test_cli_prefetch_cold_then_warm(capsys, tmp_path):
    argv = ["prefetch", "--scale", "tiny", "--figures", "speedup",
            "--workloads", "mac", "--workers", "2", "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "simulated: 5" in cold and str(tmp_path) in cold

    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "loaded from cache: 5" in warm and "simulated: 0" in warm


def test_cli_prefetch_prune_garbage_collects(capsys, tmp_path):
    argv = ["prefetch", "--scale", "tiny", "--figures", "speedup",
            "--workloads", "mac", "--workers", "2", "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    capsys.readouterr()
    # Plant litter: an orphaned tmp file and a corrupt (= stale) entry.
    (tmp_path / f"dead.pkl.tmp{2**22 - 1}").write_bytes(b"partial")
    (tmp_path / "corrupt.pkl").write_bytes(b"junk")

    assert main(argv + ["--prune"]) == 0
    out = capsys.readouterr().out
    assert "removed 1 orphaned tmp files and 1 stale entries (5 kept)" in out
    assert "simulated: 0" in out              # pruning kept the live entries


def test_cli_prefetch_prune_requires_cache():
    with pytest.raises(SystemExit):
        main(["prefetch", "--scale", "tiny", "--figures", "speedup",
              "--workloads", "mac", "--no-cache", "--prune"])


def test_cli_prefetch_no_cache_does_not_persist(capsys, tmp_path, monkeypatch):
    # Point the default cache location somewhere observable: --no-cache must
    # keep it untouched, not merely claim to.
    default_dir = tmp_path / "default-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(default_dir))
    argv = ["prefetch", "--scale", "tiny", "--figures", "latency",
            "--workloads", "mac", "--no-cache"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "simulated: 3" in out
    assert "cache: disabled" in out
    assert not default_dir.exists()


def test_cli_config_names_are_normalized():
    parser = build_parser()
    # argparse choices used to reject spellings SystemKind.from_name accepts.
    for spelling in ("arf_tid", "ARF_TID", "arf-tid", "ARF-tid"):
        assert parser.parse_args(["run", "--config", spelling]).config == "ARF-tid"
    assert parser.parse_args(["run", "--config", "dram"]).config == "DRAM"
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--config", "arf"])


def test_cli_run_with_network_override(capsys):
    exit_code = main(["run", "--config", "arf_tid", "--workload", "reduce",
                      "--threads", "2", "--param", "array_elements=256",
                      "--topology", "mesh", "--num-cubes", "8"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "reduce on ARF-tid@mesh8c4" in out
    assert "flows verified" in out


def test_cli_run_rejects_impossible_network(capsys):
    # A clean usage error (no traceback), carrying the builder's message.
    with pytest.raises(SystemExit, match="exactly 18 cubes"):
        main(["run", "--config", "HMC", "--workload", "reduce",
              "--num-cubes", "18"])


def test_cli_sweep_parser_defaults():
    parser = build_parser()
    args = parser.parse_args(["sweep", "--scale", "tiny"])
    assert args.topologies == ["dragonfly", "mesh", "torus"]
    assert args.cube_counts == [16]
    assert args.configs == ["HMC", "ART", "ARF-tid", "ARF-addr"]
    args = parser.parse_args(["sweep", "--topologies", "mesh", "--num-cubes",
                              "8", "16", "--configs", "hmc", "arf_addr"])
    assert args.topologies == ["mesh"] and args.cube_counts == [8, 16]
    assert args.configs == ["HMC", "ARF-addr"]
    with pytest.raises(SystemExit):
        parser.parse_args(["sweep", "--topologies", "hypercube"])


def test_cli_sweep_cold_then_warm(capsys, tmp_path):
    argv = ["sweep", "--scale", "tiny", "--topologies", "mesh", "torus",
            "--configs", "HMC", "--workloads", "mac", "--workers", "2",
            "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    # 1 DRAM baseline + 2 topologies x 1 scheme x 1 workload.
    assert "simulated: 3" in cold
    assert "mesh16c4" in cold and "torus16c4" in cold

    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "loaded from cache: 3" in warm and "simulated: 0" in warm


def test_cli_sweep_rejects_dram():
    with pytest.raises(SystemExit, match="DRAM"):
        main(["sweep", "--scale", "tiny", "--configs", "DRAM"])


def test_cli_sweep_rejects_impossible_shape_before_simulating(tmp_path):
    # 8 cubes cannot form a 4-controller dragonfly; the sweep must fail while
    # planning (no cache entries written), not mid-batch in a worker — and as
    # a clean usage error, not a traceback.
    with pytest.raises(SystemExit, match="exactly 8 cubes"):
        main(["sweep", "--scale", "tiny", "--topologies", "dragonfly",
              "--num-cubes", "8", "--workloads", "mac",
              "--cache-dir", str(tmp_path)])
    assert list(tmp_path.glob("*.pkl")) == []


def test_cli_sweep_deduplicates_repeated_operands(capsys, tmp_path):
    assert main(["sweep", "--scale", "tiny", "--topologies", "mesh", "mesh",
                 "--num-cubes", "16", "16", "--configs", "HMC", "hmc",
                 "--workloads", "mac", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    # One mesh row per table (speedup, queue delay, per-workload), not two.
    assert out.count("mesh16c4") == 3
    assert "simulated: 2" in out        # 1 DRAM baseline + 1 mesh/HMC cell


def test_cli_run_rejects_network_flags_on_dram():
    with pytest.raises(SystemExit, match="DRAM baseline"):
        main(["run", "--config", "dram", "--workload", "reduce",
              "--topology", "mesh"])


def test_cli_network_detail_options_parse_everywhere():
    parser = build_parser()
    detail = ["--routing", "resilient", "--failure-rate", "10",
              "--failure-seed", "7", "--num-controllers", "2",
              "--link-bandwidth", "25"]
    for command in (["run"], ["report"], ["prefetch"]):
        args = parser.parse_args(command + detail)
        assert args.routing == "resilient"
        assert args.failure_rate == 10.0 and args.failure_seed == 7
        assert args.num_controllers == 2 and args.link_bandwidth == 25.0
        defaults = parser.parse_args(command)
        assert defaults.routing is None and defaults.failure_rate is None
    # On sweep the controller/bandwidth flags are sweep *axes*: value lists.
    args = parser.parse_args(["sweep"] + detail + ["12.5"])
    assert args.routing == "resilient"
    assert args.failure_rate == 10.0 and args.failure_seed == 7
    assert args.controller_counts == [2]
    assert args.link_bandwidths == [25.0, 12.5]
    defaults = parser.parse_args(["sweep"])
    assert defaults.controller_counts is None and defaults.link_bandwidths is None
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--routing", "wormhole"])


def test_cli_report_figures_subset_option():
    parser = build_parser()
    args = parser.parse_args(["report", "--figures", "degraded"])
    assert args.figures == ["degraded"]
    args = parser.parse_args(["report", "--figures", "speedup", "degraded"])
    assert args.figures == ["speedup", "degraded"]
    with pytest.raises(SystemExit):
        parser.parse_args(["report", "--figures", "figure-9000"])


def test_cli_run_degraded_mode(capsys):
    exit_code = main(["run", "--config", "arf_tid", "--workload", "mac",
                      "--threads", "2", "--param", "array_elements=256",
                      "--routing", "resilient", "--failure-rate", "10",
                      "--failure-seed", "7"])
    assert exit_code == 0
    out = capsys.readouterr().out
    # The network fingerprint (routing + failure process) joins the label...
    assert "resilient-f10s7" in out
    # ...and the degraded-mode rows render.
    assert "hops interrupted" in out
    assert "delivered traffic" in out
    assert "flows verified" in out


def test_cli_run_rejects_failure_rate_on_static():
    # The config layer's pairing check surfaces as a clean usage error.
    with pytest.raises(SystemExit, match="fault-capable"):
        main(["run", "--config", "HMC", "--workload", "reduce",
              "--failure-rate", "5"])


def test_cli_run_rejects_routing_flags_on_dram():
    with pytest.raises(SystemExit, match="DRAM baseline"):
        main(["run", "--config", "dram", "--workload", "reduce",
              "--routing", "resilient"])


def test_cli_sweep_carries_routing_details(capsys, tmp_path):
    argv = ["sweep", "--scale", "tiny", "--topologies", "mesh",
            "--configs", "HMC", "--workloads", "mac", "--workers", "2",
            "--routing", "resilient", "--failure-rate", "2",
            "--failure-seed", "7", "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    out = capsys.readouterr().out
    # Every swept cell folds the routing/failure fingerprint into its label
    # (and thus its cache key — degraded cells never collide with clean ones).
    assert "mesh16c4-resilient-f2s7" in out
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "simulated: 0" in warm


def test_cli_scheduler_option(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    parser = build_parser()
    for command in (["run"], ["report"], ["prefetch"], ["sweep"]):
        assert parser.parse_args(command + ["--scheduler", "calendar"]
                                 ).scheduler == "calendar"
        assert parser.parse_args(command).scheduler is None
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--scheduler", "splay-tree"])

    # The flag routes through $REPRO_SCHEDULER for the duration of the
    # command (so worker processes inherit it) and restores it afterwards;
    # the simulated metrics are bit-identical across backends.
    base = ["run", "--config", "ARF-tid", "--workload", "reduce",
            "--threads", "2", "--param", "array_elements=256"]
    assert main(base + ["--scheduler", "calendar"]) == 0
    assert os.environ.get("REPRO_SCHEDULER") is None
    calendar_out = capsys.readouterr().out
    assert main(base + ["--scheduler", "heap"]) == 0
    heap_out = capsys.readouterr().out
    assert calendar_out == heap_out
    monkeypatch.setenv("REPRO_SCHEDULER", "heap")
    assert main(base + ["--scheduler", "calendar"]) == 0
    assert os.environ["REPRO_SCHEDULER"] == "heap"  # restored, not clobbered
    capsys.readouterr()
