"""Property tests for the pluggable quantile-summary backends.

Two contracts are pinned here:

* **Agreement** — on identical (untruncated) data, the sketch's quantiles
  land within its documented relative-error bound of the reservoir's: the
  sketch returns a log-bucket midpoint within ``alpha`` of the true
  rank-``floor(q*(n-1))`` order statistic, while the reservoir interpolates
  between the two ranks adjacent to ``q*(n-1)`` — so the sketch value must
  fall within ``alpha`` (relative) of the envelope spanned by the order
  statistics one rank either side of the target.
* **Merge-order invariance** — the sketch accumulates integer bucket counts,
  so merging the same shards in any order yields *exactly* the same
  quantiles, not merely close ones.  (This is what makes the fixed-shard-
  order fold of the sharded backend reproducible, and what a reservoir
  cannot promise once truncated.)
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SUMMARY_BACKENDS, QuantileSketch, make_summary
from repro.sim.stats import DEFAULT_SKETCH_ALPHA, Histogram

QUANTILES = (0.50, 0.95, 0.99)

#: Positive magnitudes well clear of the sketch's zero-collapse threshold.
values_strategy = st.lists(
    st.floats(min_value=1e-3, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=2, max_size=300)


def _rank_envelope(ordered, q):
    """The order statistics one rank either side of the ``q`` target rank."""
    position = q * (len(ordered) - 1)
    lower = max(0, math.floor(position) - 1)
    upper = min(len(ordered) - 1, math.ceil(position) + 1)
    return ordered[lower], ordered[upper]


@settings(max_examples=60, deadline=None)
@given(values=values_strategy)
def test_sketch_quantiles_agree_with_reservoir_within_alpha(values):
    reservoir = Histogram()
    sketch = QuantileSketch()
    for value in values:
        reservoir.add(value)
        sketch.add(value)
    assert sketch.count == reservoir.count == len(values)
    assert math.isclose(sketch.total, reservoir.total, rel_tol=1e-12)

    ordered = sorted(values)
    alpha = DEFAULT_SKETCH_ALPHA
    for q in QUANTILES:
        estimate = sketch.percentile(q)
        low, high = _rank_envelope(ordered, q)
        assert low * (1.0 - 2 * alpha) <= estimate <= high * (1.0 + 2 * alpha), (
            q, estimate, low, high)
        # The reservoir interpolates inside the same envelope, so the two
        # backends agree within the documented bound on untruncated data.
        # (ulp slack: (1-f)*lo + f*hi can round one ulp past hi.)
        exact = reservoir.percentile(q)
        assert low * (1.0 - 1e-12) <= exact <= high * (1.0 + 1e-12)


@settings(max_examples=40, deadline=None)
@given(values=values_strategy, seed=st.integers(min_value=0, max_value=2**16),
       shards=st.integers(min_value=2, max_value=5))
def test_sketch_merge_is_exactly_order_invariant(values, seed, shards):
    import random

    parts = [QuantileSketch() for _ in range(shards)]
    for index, value in enumerate(values):
        parts[index % shards].add(value)

    def merged(order):
        out = QuantileSketch()
        for index in order:
            out.merge(parts[index])
        return out

    forward = merged(range(shards))
    shuffled_order = list(range(shards))
    random.Random(seed).shuffle(shuffled_order)
    shuffled = merged(shuffled_order)

    assert forward.count == shuffled.count == len(values)
    assert forward.buckets == shuffled.buckets
    for q in QUANTILES:
        # Integer bucket counts merge associatively and commutatively: the
        # quantiles are bit-equal, not merely within tolerance.
        assert forward.percentile(q) == shuffled.percentile(q)


def test_make_summary_builds_every_registered_backend():
    for name, cls in SUMMARY_BACKENDS.items():
        summary = make_summary(name)
        assert type(summary) is cls
        summary.add(1.0)
        summary.add(3.0)
        assert summary.count == 2
        assert summary.as_dict()["mean"] == 2.0
