"""Unit tests for memory-network topologies."""

import networkx as nx
import pytest

from repro.network import (Topology, build_chain, build_dragonfly,
                           build_flattened_butterfly, build_mesh,
                           build_network_topology, build_topology, build_torus,
                           dragonfly_shape, grid_shape)


def test_dragonfly_structure():
    topo = build_dragonfly(num_groups=4, routers_per_group=4, num_controllers=4)
    assert topo.num_cubes == 16
    assert len(topo.controller_nodes) == 4
    topo.validate()
    # Intra-group: complete graph of 4 -> 3 local links per router.
    # Plus exactly one global link per group pair: 6 global links.
    cube_graph = topo.graph.subgraph(range(16))
    intra = 4 * (4 * 3 // 2)
    assert cube_graph.number_of_edges() == intra + 6
    # Every pair of cubes is reachable.
    assert nx.is_connected(cube_graph)


def test_dragonfly_controllers_attach_to_distinct_groups():
    topo = build_dragonfly()
    groups = {topo.controller_attach[c] // 4 for c in topo.controller_nodes}
    assert groups == {0, 1, 2, 3}


def test_dragonfly_validation_errors():
    with pytest.raises(ValueError):
        build_dragonfly(num_groups=1)
    with pytest.raises(ValueError):
        build_dragonfly(num_groups=6, routers_per_group=4, num_controllers=7)
    with pytest.raises(ValueError):
        build_dragonfly(num_groups=8, routers_per_group=2)


def test_mesh_structure():
    topo = build_mesh(rows=4, cols=4, num_controllers=4)
    assert topo.num_cubes == 16
    # 2*4*3 = 24 mesh edges plus 4 controller edges.
    assert topo.graph.number_of_edges() == 24 + 4
    corners = {topo.controller_attach[c] for c in topo.controller_nodes}
    assert corners == {0, 3, 12, 15}


def test_chain_structure():
    topo = build_chain(num_cubes=4, num_controllers=1)
    assert topo.num_cubes == 4
    assert topo.graph.number_of_edges() == 3 + 1
    assert topo.is_controller(4)
    assert topo.is_cube(0) and not topo.is_cube(4)


def test_build_topology_by_name():
    assert build_topology("mesh", rows=2, cols=2, num_controllers=1).num_cubes == 4
    assert build_topology("torus", rows=2, cols=3, num_controllers=2).num_cubes == 6
    with pytest.raises(ValueError):
        build_topology("hypercube")


def test_neighbors_sorted_and_edges_normalized():
    topo = build_mesh(rows=2, cols=2, num_controllers=1)
    for node in topo.graph.nodes:
        assert topo.neighbors(node) == sorted(topo.neighbors(node))
    for a, b in topo.edges():
        assert a <= b


# -- torus / flattened butterfly ------------------------------------------------

def test_torus_structure():
    topo = build_torus(rows=4, cols=4, num_controllers=4)
    assert topo.num_cubes == 16
    # The 24 mesh edges plus 8 wrap-around links, plus 4 controller edges.
    assert topo.graph.number_of_edges() == 24 + 8 + 4
    cube_graph = topo.graph.subgraph(range(16))
    assert nx.is_connected(cube_graph)
    # Every cube has degree 4 in the cube-only torus.
    assert {d for _n, d in cube_graph.degree()} == {4}
    # Wrap links halve the cube-graph diameter relative to the mesh.
    assert nx.diameter(cube_graph) == 4
    mesh_cubes = build_mesh(rows=4, cols=4).graph.subgraph(range(16))
    assert nx.diameter(mesh_cubes) == 6


def test_torus_degenerate_dimensions_have_no_self_loops():
    for rows, cols in ((1, 4), (2, 3), (1, 1)):
        topo = build_torus(rows=rows, cols=cols, num_controllers=1)
        assert topo.num_cubes == rows * cols
        assert nx.number_of_selfloops(topo.graph) == 0
        topo.validate()


def test_flattened_butterfly_structure():
    topo = build_flattened_butterfly(rows=4, cols=4, num_controllers=4)
    assert topo.num_cubes == 16
    # Full row cliques (4 * C(4,2)) + full column cliques, + 4 controller links.
    assert topo.graph.number_of_edges() == 24 + 24 + 4
    cube_graph = topo.graph.subgraph(range(16))
    # Any cube reaches any other in at most two hops (row hop + column hop).
    assert nx.diameter(cube_graph) == 2


def test_new_builders_controllers_are_disjoint_from_cubes():
    for topo in (build_torus(rows=2, cols=4, num_controllers=4),
                 build_flattened_butterfly(rows=2, cols=4, num_controllers=3)):
        controllers = set(topo.controller_nodes)
        assert len(controllers) == len(topo.controller_nodes)
        assert controllers.isdisjoint(range(topo.num_cubes))
        for ctrl in controllers:
            assert topo.graph.has_edge(ctrl, topo.controller_attach[ctrl])


# -- cube-count driven construction ----------------------------------------------

def test_grid_shape_is_exact_and_balanced():
    assert grid_shape(16) == (4, 4)
    assert grid_shape(8) == (2, 4)
    assert grid_shape(12) == (3, 4)
    assert grid_shape(7) == (1, 7)       # prime counts degenerate but stay exact
    with pytest.raises(ValueError):
        grid_shape(0)


def test_dragonfly_shape_honors_constraints():
    assert dragonfly_shape(16, 4) == (4, 4)
    assert dragonfly_shape(12, 3) == (3, 4)
    # 18 cubes cannot satisfy groups >= 4 and groups - 1 <= routers.
    with pytest.raises(ValueError, match="exactly 18 cubes"):
        dragonfly_shape(18, 4)
    with pytest.raises(ValueError, match="exactly 8 cubes"):
        dragonfly_shape(8, 4)


@pytest.mark.parametrize("kind", ["dragonfly", "mesh", "torus",
                                  "flattened_butterfly", "chain"])
def test_build_network_topology_builds_exact_cube_counts(kind):
    num_cubes = 16 if kind == "dragonfly" else 12
    topo = build_network_topology(kind, num_cubes=num_cubes, num_controllers=4)
    assert topo.num_cubes == num_cubes
    assert set(topo.graph.nodes) == set(range(num_cubes + 4))
    topo.validate()


def test_build_network_topology_default_matches_explicit_dragonfly():
    derived = build_network_topology("dragonfly", num_cubes=16, num_controllers=4)
    explicit = build_dragonfly(num_groups=4, routers_per_group=4, num_controllers=4)
    assert derived.name == explicit.name
    assert derived.edges() == explicit.edges()
    assert derived.controller_attach == explicit.controller_attach


def test_build_network_topology_rejects_impossible_requests():
    with pytest.raises(ValueError, match="dragonfly"):
        build_network_topology("dragonfly", num_cubes=18, num_controllers=4)
    with pytest.raises(ValueError, match="unknown topology"):
        build_network_topology("hypercube", num_cubes=16, num_controllers=4)


# -- Topology.validate cross-checks ----------------------------------------------

def _valid_topology():
    return build_mesh(rows=2, cols=2, num_controllers=2)


def test_validate_rejects_cube_count_divergence():
    topo = _valid_topology()
    topo.num_cubes = 7                    # advertises a cube the graph lacks
    with pytest.raises(ValueError, match="missing cube nodes"):
        topo.validate()


def test_validate_rejects_controller_overlapping_cube_range():
    topo = _valid_topology()
    topo.num_cubes = 3                    # node 3 is both cube and controller... almost
    with pytest.raises(ValueError):
        topo.validate()
    graph = nx.path_graph(4)
    overlapping = Topology(name="broken", num_cubes=4, graph=graph,
                           controller_nodes=[3], controller_attach={3: 0})
    with pytest.raises(ValueError, match="collide with the cube id range"):
        overlapping.validate()


def test_validate_rejects_duplicate_and_inconsistent_controllers():
    graph = nx.path_graph(3)
    graph.add_edge(3, 0)
    dupes = Topology(name="dupes", num_cubes=3, graph=graph,
                     controller_nodes=[3, 3], controller_attach={3: 0})
    with pytest.raises(ValueError, match="duplicate controller"):
        dupes.validate()
    mismatch = Topology(name="mismatch", num_cubes=3, graph=graph,
                        controller_nodes=[3], controller_attach={})
    with pytest.raises(ValueError, match="disagree"):
        mismatch.validate()


def test_validate_rejects_detached_controller_and_stray_nodes():
    graph = nx.path_graph(3)
    graph.add_node(3)                     # controller node with no edge
    graph.add_edge(3, 1)
    detached = Topology(name="detached", num_cubes=3, graph=graph,
                        controller_nodes=[3], controller_attach={3: 0})
    with pytest.raises(ValueError, match="not attached"):
        detached.validate()
    stray = nx.path_graph(5)
    with pytest.raises(ValueError, match="unexpected nodes"):
        Topology(name="stray", num_cubes=3, graph=stray,
                 controller_nodes=[3], controller_attach={3: 2}).validate()
