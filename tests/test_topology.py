"""Unit tests for memory-network topologies."""

import networkx as nx
import pytest

from repro.network import build_chain, build_dragonfly, build_mesh, build_topology


def test_dragonfly_structure():
    topo = build_dragonfly(num_groups=4, routers_per_group=4, num_controllers=4)
    assert topo.num_cubes == 16
    assert len(topo.controller_nodes) == 4
    topo.validate()
    # Intra-group: complete graph of 4 -> 3 local links per router.
    # Plus exactly one global link per group pair: 6 global links.
    cube_graph = topo.graph.subgraph(range(16))
    intra = 4 * (4 * 3 // 2)
    assert cube_graph.number_of_edges() == intra + 6
    # Every pair of cubes is reachable.
    assert nx.is_connected(cube_graph)


def test_dragonfly_controllers_attach_to_distinct_groups():
    topo = build_dragonfly()
    groups = {topo.controller_attach[c] // 4 for c in topo.controller_nodes}
    assert groups == {0, 1, 2, 3}


def test_dragonfly_validation_errors():
    with pytest.raises(ValueError):
        build_dragonfly(num_groups=1)
    with pytest.raises(ValueError):
        build_dragonfly(num_groups=6, routers_per_group=4, num_controllers=7)
    with pytest.raises(ValueError):
        build_dragonfly(num_groups=8, routers_per_group=2)


def test_mesh_structure():
    topo = build_mesh(rows=4, cols=4, num_controllers=4)
    assert topo.num_cubes == 16
    # 2*4*3 = 24 mesh edges plus 4 controller edges.
    assert topo.graph.number_of_edges() == 24 + 4
    corners = {topo.controller_attach[c] for c in topo.controller_nodes}
    assert corners == {0, 3, 12, 15}


def test_chain_structure():
    topo = build_chain(num_cubes=4, num_controllers=1)
    assert topo.num_cubes == 4
    assert topo.graph.number_of_edges() == 3 + 1
    assert topo.is_controller(4)
    assert topo.is_cube(0) and not topo.is_cube(4)


def test_build_topology_by_name():
    assert build_topology("mesh", rows=2, cols=2, num_controllers=1).num_cubes == 4
    with pytest.raises(ValueError):
        build_topology("torus")


def test_neighbors_sorted_and_edges_normalized():
    topo = build_mesh(rows=2, cols=2, num_controllers=1)
    for node in topo.graph.nodes:
        assert topo.neighbors(node) == sorted(topo.neighbors(node))
    for a, b in topo.edges():
        assert a <= b
