"""Unit and property tests for the statistics registry."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Histogram, StatsRegistry, geometric_mean


def test_counters_and_prefix_sum():
    stats = StatsRegistry()
    stats.add("cache.l1_hits", 3)
    stats.add("cache.l1_hits", 2)
    stats.add("cache.l2_hits", 7)
    assert stats.counter("cache.l1_hits") == 5
    assert stats.sum("cache.") == 12
    assert stats.counters("cache.") == {"cache.l1_hits": 5, "cache.l2_hits": 7}


def test_gauges():
    stats = StatsRegistry()
    stats.set_gauge("occupancy", 4)
    stats.set_gauge("occupancy", 9)
    assert stats.gauge("occupancy") == 9
    assert stats.gauge("missing", default=-1) == -1


def test_histograms_and_snapshot():
    stats = StatsRegistry()
    for v in (1.0, 2.0, 3.0):
        stats.observe("lat", v)
    hist = stats.histogram("lat")
    assert hist.count == 3
    assert hist.mean == pytest.approx(2.0)
    snap = stats.snapshot()
    assert snap["lat.mean"] == pytest.approx(2.0)
    assert snap["lat.count"] == 3


def test_merge_combines_everything():
    a, b = StatsRegistry(), StatsRegistry()
    a.add("x", 1)
    b.add("x", 2)
    b.observe("h", 5.0)
    b.set_gauge("g", 7)
    a.merge(b)
    assert a.counter("x") == 3
    assert a.histogram("h").count == 1
    assert a.gauge("g") == 7


def test_histogram_percentile_and_bounds():
    hist = Histogram()
    for v in range(1, 101):
        hist.add(float(v))
    assert hist.minimum == 1
    assert hist.maximum == 100
    assert hist.percentile(0.5) == pytest.approx(50, abs=2)
    with pytest.raises(ValueError):
        hist.percentile(1.5)
    with pytest.raises(ValueError):
        hist.percentile(-0.1)


def test_percentile_linear_interpolation_even_population():
    hist = Histogram()
    for v in range(1, 101):        # 100 samples: 1..100
        hist.add(float(v))
    assert hist.percentile(0.0) == 1.0
    assert hist.percentile(1.0) == 100.0
    assert hist.percentile(0.5) == pytest.approx(50.5)
    assert hist.percentile(0.95) == pytest.approx(95.05)
    assert hist.percentile(0.99) == pytest.approx(99.01)


def test_percentile_linear_interpolation_odd_population():
    hist = Histogram()
    for v in range(1, 102):        # 101 samples: 1..101
        hist.add(float(v))
    # Exact ranks: no banker's-rounding flip between even and odd sizes.
    assert hist.percentile(0.5) == 51.0
    assert hist.percentile(0.95) == pytest.approx(96.0)
    assert hist.percentile(0.99) == pytest.approx(100.0)


def test_percentile_two_samples_interpolates():
    hist = Histogram()
    hist.add(10.0)
    hist.add(20.0)
    assert hist.percentile(0.5) == pytest.approx(15.0)
    assert hist.percentile(0.25) == pytest.approx(12.5)


def test_geometric_mean_basics():
    assert geometric_mean([]) == 0.0
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


@given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=50))
def test_geometric_mean_between_min_and_max(values):
    gm = geometric_mean(values)
    slack = 1e-9 * max(1.0, max(values))
    assert min(values) - slack <= gm <= max(values) + slack


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=1, max_size=200))
def test_histogram_mean_is_bounded(values):
    hist = Histogram()
    for v in values:
        hist.add(v)
    assert hist.count == len(values)
    slack = 1e-9 * max(1.0, abs(hist.minimum), abs(hist.maximum))
    assert hist.minimum - slack <= hist.mean <= hist.maximum + slack
    assert hist.total == pytest.approx(math.fsum(values), rel=1e-9, abs=1e-6)


# -- bound counter handles (the hot-path fast path) -----------------------------

def test_counter_handle_visible_through_string_api():
    stats = StatsRegistry()
    handle = stats.counter_handle("net.hops")
    handle.value += 3
    handle.add(2)
    assert stats.counter("net.hops") == 5
    assert stats.counters("net.") == {"net.hops": 5}
    assert stats.sum("net.") == 5
    assert stats.snapshot()["net.hops"] == 5


def test_counter_handle_migrates_existing_value():
    stats = StatsRegistry()
    stats.add("x", 4)
    handle = stats.counter_handle("x")
    assert handle.value == 4
    handle.value += 1
    stats.add("x", 2)          # slow path routes into the bound cell
    assert stats.counter("x") == 7
    assert stats.counter_handle("x") is handle   # one cell per name


def test_counter_handle_equivalent_to_string_counters():
    """The same increment sequence through handles and through the string API
    must produce identical readbacks."""
    via_strings, via_handles = StatsRegistry(), StatsRegistry()
    amounts = [1.0, 0.5, 3.25, 7.0, 0.125]
    for amount in amounts:
        via_strings.add("a.b", amount)
        via_strings.add("a.c", 2 * amount)
    h_b = via_handles.counter_handle("a.b")
    h_c = via_handles.counter_handle("a.c")
    for amount in amounts:
        h_b.value += amount
        h_c.value += 2 * amount
    assert via_strings.counters("a.") == via_handles.counters("a.")
    assert via_strings.sum("a.") == via_handles.sum("a.")
    assert via_strings.snapshot() == via_handles.snapshot()


def test_unused_handle_is_invisible_like_a_missing_counter():
    stats = StatsRegistry()
    stats.counter_handle("never.touched")
    assert stats.counters() == {}
    assert "never.touched" not in stats.snapshot()
    assert stats.counter("never.touched") == 0.0


def test_merge_sees_bound_handles():
    a, b = StatsRegistry(), StatsRegistry()
    b.counter_handle("x").value += 5
    a.counter_handle("x").value += 1
    a.merge(b)
    assert a.counter("x") == 6


def test_clear_resets_bound_handles():
    stats = StatsRegistry()
    handle = stats.counter_handle("x")
    handle.value += 9
    stats.clear()
    assert handle.value == 0.0
    assert stats.counter("x") == 0.0


# -- histogram retained-sample cap ----------------------------------------------

def test_histogram_sample_cap_keeps_summary_exact():
    hist = Histogram(max_samples=10)
    for v in range(100):
        hist.add(float(v))
    assert hist.count == 100
    assert hist.total == sum(range(100))
    assert hist.minimum == 0 and hist.maximum == 99
    assert hist.mean == pytest.approx(49.5)
    assert len(hist.samples) == 10
    assert hist.truncated


def test_histogram_below_cap_is_not_truncated():
    hist = Histogram(max_samples=10)
    for v in range(10):
        hist.add(float(v))
    assert not hist.truncated
    assert hist.percentile(1.0) == 9.0


def test_histogram_merge_respects_cap():
    a = Histogram(max_samples=5)
    b = Histogram(max_samples=5)
    for v in range(4):
        a.add(float(v))
        b.add(float(10 + v))
    a.merge(b)
    assert a.count == 8
    assert len(a.samples) <= 5
    assert a.truncated
    assert a.maximum == 13.0


def test_reservoir_keeps_a_spread_not_a_prefix():
    """Truncation must not keep only the first max_samples observations."""
    hist = Histogram(max_samples=50)
    for v in range(1000):
        hist.add(float(v))
    assert hist.truncated
    assert len(hist.samples) == 50
    assert set(hist.samples) <= {float(v) for v in range(1000)}
    # A first-N prefix would top out at 49; the reservoir sees late values too.
    assert max(hist.samples) > 900
    assert hist.count == 1000 and hist.mean == pytest.approx(499.5)


def test_reservoir_is_deterministic():
    a, b = Histogram(max_samples=16), Histogram(max_samples=16)
    for v in range(500):
        a.add(float(v))
        b.add(float(v))
    assert a.samples == b.samples


def test_reservoir_merge_sees_both_sides():
    a = Histogram(max_samples=8)
    b = Histogram(max_samples=8)
    for v in range(8):
        a.add(float(v))
        b.add(float(100 + v))
    a.merge(b)
    assert a.count == 16
    assert len(a.samples) == 8
    assert a.truncated
    # The merged reservoir retains observations from both populations.
    assert any(v >= 100 for v in a.samples)
    assert any(v < 100 for v in a.samples)


def test_histogram_reset_restores_reservoir_state():
    hist = Histogram(max_samples=4)
    for v in range(20):
        hist.add(float(v))
    hist.reset()
    assert hist.count == 0 and hist.samples == [] and not hist.truncated
    for v in range(4):
        hist.add(float(v))
    assert not hist.truncated
    assert hist.samples == [0.0, 1.0, 2.0, 3.0]


def test_clear_resets_bound_histogram_in_place():
    stats = StatsRegistry()
    hist = stats.histogram("lat")          # component-style pre-bound reference
    hist.add(5.0)
    stats.clear()
    # Backend-agnostic reset check: both the reservoir and the sketch empty
    # out in place (the reservoir also drops its samples and truncated flag).
    assert hist.count == 0 and hist.total == 0.0
    if isinstance(hist, Histogram):
        assert hist.samples == [] and not hist.truncated
    hist.add(7.0)                          # the bound reference stays live...
    assert stats.histogram("lat") is hist  # ...and the registry sees the same object
    assert stats.snapshot()["lat.mean"] == 7.0
