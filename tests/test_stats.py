"""Unit and property tests for the statistics registry."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Histogram, StatsRegistry, geometric_mean


def test_counters_and_prefix_sum():
    stats = StatsRegistry()
    stats.add("cache.l1_hits", 3)
    stats.add("cache.l1_hits", 2)
    stats.add("cache.l2_hits", 7)
    assert stats.counter("cache.l1_hits") == 5
    assert stats.sum("cache.") == 12
    assert stats.counters("cache.") == {"cache.l1_hits": 5, "cache.l2_hits": 7}


def test_gauges():
    stats = StatsRegistry()
    stats.set_gauge("occupancy", 4)
    stats.set_gauge("occupancy", 9)
    assert stats.gauge("occupancy") == 9
    assert stats.gauge("missing", default=-1) == -1


def test_histograms_and_snapshot():
    stats = StatsRegistry()
    for v in (1.0, 2.0, 3.0):
        stats.observe("lat", v)
    hist = stats.histogram("lat")
    assert hist.count == 3
    assert hist.mean == pytest.approx(2.0)
    snap = stats.snapshot()
    assert snap["lat.mean"] == pytest.approx(2.0)
    assert snap["lat.count"] == 3


def test_merge_combines_everything():
    a, b = StatsRegistry(), StatsRegistry()
    a.add("x", 1)
    b.add("x", 2)
    b.observe("h", 5.0)
    b.set_gauge("g", 7)
    a.merge(b)
    assert a.counter("x") == 3
    assert a.histogram("h").count == 1
    assert a.gauge("g") == 7


def test_histogram_percentile_and_bounds():
    hist = Histogram()
    for v in range(1, 101):
        hist.add(float(v))
    assert hist.minimum == 1
    assert hist.maximum == 100
    assert hist.percentile(0.5) == pytest.approx(50, abs=2)
    with pytest.raises(ValueError):
        hist.percentile(1.5)


def test_geometric_mean_basics():
    assert geometric_mean([]) == 0.0
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


@given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=50))
def test_geometric_mean_between_min_and_max(values):
    gm = geometric_mean(values)
    slack = 1e-9 * max(1.0, max(values))
    assert min(values) - slack <= gm <= max(values) + slack


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=1, max_size=200))
def test_histogram_mean_is_bounded(values):
    hist = Histogram()
    for v in values:
        hist.add(v)
    assert hist.count == len(values)
    slack = 1e-9 * max(1.0, abs(hist.minimum), abs(hist.maximum))
    assert hist.minimum - slack <= hist.mean <= hist.maximum + slack
    assert hist.total == pytest.approx(math.fsum(values), rel=1e-9, abs=1e-6)
