"""Unit tests for the cache hierarchy, directory and MSHR behaviour."""

import pytest

from repro.cpu.cache import Cache, CacheHierarchy, Directory
from repro.cpu.config import CacheConfig, CMPConfig, CoreConfig
from repro.cpu.noc import MeshNoC
from repro.mem import MemoryRequest
from repro.sim import Simulator


class ImmediateMemory:
    """Fake memory that completes every request after a fixed latency."""

    def __init__(self, sim, latency=100.0):
        self.sim = sim
        self.latency = latency
        self.requests = []

    @property
    def is_network_memory(self):
        return False

    def access(self, request: MemoryRequest) -> None:
        self.requests.append(request)
        finish = self.sim.now + self.latency
        self.sim.schedule(self.latency, lambda: request.complete(finish))


def small_cmp_config() -> CMPConfig:
    return CMPConfig(num_cores=2, mesh_rows=2, mesh_cols=2, core=CoreConfig(),
                     cache=CacheConfig(l1_size=1024, l1_assoc=2, l2_size=4096, l2_assoc=4,
                                       l2_banks=2, prefetch_degree=0))


@pytest.fixture
def hierarchy(sim):
    config = small_cmp_config()
    noc = MeshNoC(sim, config.mesh_rows, config.mesh_cols)
    memory = ImmediateMemory(sim)
    return CacheHierarchy(sim, config, noc, memory), memory


def test_cache_lru_eviction():
    cache = Cache(size_bytes=4 * 64, assoc=2, block_size=64)  # 2 sets x 2 ways
    assert not cache.lookup(0)
    cache.fill(0)
    cache.fill(2)      # same set as 0 (block % 2 == 0)
    assert cache.lookup(0)
    victim = cache.fill(4)  # evicts LRU of set 0, which is block 2
    assert victim == (2, False)
    assert cache.contains(0) and cache.contains(4) and not cache.contains(2)


def test_cache_dirty_eviction_reported():
    cache = Cache(size_bytes=2 * 64, assoc=1, block_size=64)
    cache.fill(0, dirty=True)
    victim = cache.fill(2, dirty=False)
    assert victim == (0, True)


def test_cache_validation():
    with pytest.raises(ValueError):
        Cache(size_bytes=100, assoc=3, block_size=64)


def test_directory_tracks_sharers_and_invalidations():
    directory = Directory()
    directory.add_sharer(10, 0)
    directory.add_sharer(10, 1)
    victims = directory.exclusive(10, 2)
    assert victims == [0, 1]
    assert directory.sharers(10) == {2}
    assert directory.invalidations == 2
    directory.remove_sharer(10, 2)
    assert directory.sharers(10) == set()


def test_hierarchy_miss_then_hit(sim, hierarchy):
    cache, memory = hierarchy
    results = []
    first = cache.access(0, addr=0x1000, is_write=False, on_complete=results.append)
    assert first is None          # cold miss goes to memory
    sim.run_until_idle()
    assert len(results) == 1
    assert results[0] > 100       # includes the memory latency
    # Second access to the same block hits on chip.
    second = cache.access(0, addr=0x1008, is_write=False)
    assert second is not None and second < 50


def test_hierarchy_mshr_merging(sim, hierarchy):
    cache, memory = hierarchy
    results = []
    assert cache.access(0, addr=0x2000, is_write=False, on_complete=results.append) is None
    assert cache.access(0, addr=0x2008, is_write=False, on_complete=results.append) is None
    assert len(memory.requests) == 1          # merged into one block fetch
    sim.run_until_idle()
    assert len(results) == 2
    assert sim.stats.counter("cache.mshr_merges") == 1


def test_write_invalidates_other_sharers(sim, hierarchy):
    cache, memory = hierarchy
    cache.access(0, addr=0x3000, is_write=False)
    cache.access(1, addr=0x3000, is_write=False)
    sim.run_until_idle()
    # Both cores now share the block; a write from core 0 invalidates core 1.
    latency = cache.access(0, addr=0x3000, is_write=True)
    assert latency is not None
    assert sim.stats.counter("cache.invalidations") >= 1
    assert not cache.l1s[1].contains(cache.block_of(0x3000))


def test_dirty_l2_eviction_writes_back(sim):
    config = small_cmp_config()
    noc = MeshNoC(sim, 2, 2)
    memory = ImmediateMemory(sim)
    cache = CacheHierarchy(sim, config, noc, memory)
    # Write to many distinct blocks to force L2 evictions of dirty lines.
    for i in range(200):
        cache.access(0, addr=i * 64, is_write=True)
        sim.run_until_idle()
    writebacks = [r for r in memory.requests if r.is_write]
    assert writebacks, "expected dirty L2 victims to be written back to memory"


def test_atomic_access_serializes(sim, hierarchy):
    cache, memory = hierarchy
    done = []
    cache.atomic_access(0, addr=0x4000, on_complete=done.append, occupancy=50)
    cache.atomic_access(1, addr=0x4000, on_complete=done.append, occupancy=50)
    sim.run_until_idle()
    assert len(done) == 2
    # The second atomic had to wait for the first one's slot.
    assert max(done) >= 50


def test_prefetcher_issues_extra_requests(sim):
    config = CMPConfig(num_cores=1, mesh_rows=2, mesh_cols=2, core=CoreConfig(),
                       cache=CacheConfig(l1_size=1024, l1_assoc=2, l2_size=4096,
                                         l2_assoc=4, l2_banks=2, prefetch_degree=2))
    noc = MeshNoC(sim, 2, 2)
    memory = ImmediateMemory(sim)
    cache = CacheHierarchy(sim, config, noc, memory)
    cache.access(0, addr=0, is_write=False)
    assert len(memory.requests) == 3   # demand + 2 prefetches
    sim.run_until_idle()
    assert sim.stats.counter("cache.prefetches") == 2
    # The prefetched next block now hits on chip.
    assert cache.access(0, addr=64, is_write=False) is not None


def test_hit_rates_reported(sim, hierarchy):
    cache, _memory = hierarchy
    cache.access(0, addr=0x100, is_write=False)
    sim.run_until_idle()
    cache.access(0, addr=0x100, is_write=False)
    assert 0.0 <= cache.l1_hit_rate() <= 1.0
    assert 0.0 <= cache.l2_hit_rate() <= 1.0
