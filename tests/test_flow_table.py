"""Unit tests for the Active Flow Table and operand buffer pool."""

import pytest

from repro.core.flow_table import FlowTable, FlowTableEntry
from repro.core.operand_buffer import OperandBufferPool
from repro.network.packet import UpdatePacket
from repro.sim import Simulator


def _update(flow=0x100, root=3):
    return UpdatePacket(src=16, dst=0, opcode="mac", target_addr=flow,
                        src1_addr=0x10, src2_addr=0x20, root_node=root)


def test_flow_entry_completion_logic():
    entry = FlowTableEntry(flow_id=1, root=0, opcode="add", result=0.0)
    entry.parent = 16
    assert not entry.complete              # gflag not set
    entry.gflag = True
    assert entry.complete                  # req == resp == 0
    entry.req_counter = 2
    assert not entry.complete
    entry.resp_counter = 2
    assert entry.complete
    entry.pending_children = {5}
    assert not entry.complete


def test_flow_table_register_lookup_release():
    sim = Simulator()
    table = FlowTable(sim, "ft", capacity=4)
    entry = table.get_or_create(0x100, 3, "mac", parent=16)
    assert table.lookup(0x100, 3) is entry
    assert table.lookup(0x100, 7) is None          # different root = different tree
    again = table.get_or_create(0x100, 3, "mac", parent=99)
    assert again is entry
    assert entry.parent == 16                      # first parent wins
    table.release(entry.key)
    assert table.lookup(0x100, 3) is None
    assert table.occupancy == 0
    assert table.peak_occupancy == 1


def test_flow_table_overflow_counted():
    sim = Simulator()
    table = FlowTable(sim, "ft", capacity=2)
    for i in range(3):
        table.get_or_create(i, 0, "add", parent=None)
    assert sim.stats.counter("ft.overflows") == 1
    with pytest.raises(ValueError):
        FlowTable(sim, "bad", capacity=0)


def test_operand_buffer_reserve_release_cycle():
    sim = Simulator()
    pool = OperandBufferPool(sim, "ob", capacity=2)
    e1 = pool.reserve(0x1, 0, "mac", _update(), arrival_time=0.0, num_operands=2)
    e2 = pool.reserve(0x2, 0, "mac", _update(), arrival_time=0.0, num_operands=2)
    assert pool.free_slots == 0
    assert pool.reserve(0x3, 0, "mac", _update(), 0.0, 2) is None
    assert sim.stats.counter("ob.reserve_failures") == 1
    pool.release(e1.slot)
    assert pool.free_slots == 1
    e3 = pool.reserve(0x3, 0, "mac", _update(), 0.0, 2)
    assert e3 is not None
    assert pool.in_use == 2
    with pytest.raises(KeyError):
        pool.release(99)          # slot that was never allocated
    assert e2.slot in pool.entries and e3.slot in pool.entries


def test_operand_buffer_readiness():
    sim = Simulator()
    pool = OperandBufferPool(sim, "ob", capacity=1)
    entry = pool.reserve(0x1, 0, "mac", _update(), arrival_time=5.0, num_operands=2)
    assert not entry.ready
    entry.set_operand(0, 2.0)
    assert not entry.ready
    entry.set_operand(1, 3.0)
    assert entry.ready
    assert (entry.op_value1, entry.op_value2) == (2.0, 3.0)
    with pytest.raises(ValueError):
        entry.set_operand(2, 1.0)


def test_single_operand_entry_ready_after_one():
    sim = Simulator()
    pool = OperandBufferPool(sim, "ob", capacity=1)
    entry = pool.reserve(0x1, 0, "mov", _update(), arrival_time=0.0, num_operands=1)
    entry.set_operand(0, 7.0)
    assert entry.ready
