"""Integration-style unit tests of the Active-Routing engine and host logic.

These exercise the three-phase protocol end to end on a real 16-cube network
with small hand-built flows, checking functional correctness of the in-network
reduction as well as the tree bookkeeping.
"""

import random

import pytest

from repro.core import ActiveRoutingHost, AREConfig, Scheme
from repro.hmc import HMCMemorySystem
from repro.isa import GatherOp, UpdateOp
from repro.sim import Simulator


def _setup(scheme=Scheme.ARF_TID, are_config=None):
    sim = Simulator()
    hmc = HMCMemorySystem(sim)
    host = ActiveRoutingHost(sim, hmc, scheme, are_config=are_config)
    return sim, hmc, host


def _offload_flow(sim, host, opcode, pairs, target, threads=2):
    expected = 0.0
    commits = []
    results = []
    for i, (addr1, addr2, v1, v2) in enumerate(pairs):
        op = UpdateOp(opcode, addr1, addr2, target, src1_value=v1, src2_value=v2)
        host.offload_update(i % threads, op, lambda: commits.append(1))
        if opcode == "mac":
            expected += v1 * v2
        elif opcode == "add":
            expected += v1
        elif opcode == "abs_diff":
            expected += abs(v1 - v2)
    for t in range(threads):
        host.offload_gather(t, GatherOp(target, threads), results.append)
    sim.run_until_idle()
    return expected, commits, results


def test_single_operand_reduction_is_exact():
    sim, hmc, host = _setup()
    rng = random.Random(0)
    pairs = [(0x1000_0000 + i * 8 * 641, None, rng.random(), 0.0) for i in range(100)]
    expected, commits, results = _offload_flow(sim, host, "add", pairs, target=0xAA00)
    assert len(commits) == 100
    assert len(results) == 2
    assert results[0] == pytest.approx(expected)
    assert host.flow_results[0xAA00] == pytest.approx(expected)


def test_two_operand_mac_across_cubes():
    sim, hmc, host = _setup()
    rng = random.Random(1)
    pairs = [(0x1000_0000 + i * 8 * 977, 0x2000_0000 + i * 8 * 1283,
              rng.random(), rng.random()) for i in range(150)]
    expected, commits, results = _offload_flow(sim, host, "mac", pairs, target=0xBB00)
    assert len(commits) == 150
    assert results[0] == pytest.approx(expected)
    # Two-operand updates must have exercised operand requests or local reads.
    stats = sim.stats
    operand_reads = sum(stats.counter(f"are{c}.operand_reads_served") for c in range(16))
    assert operand_reads >= 150


def test_multiple_concurrent_flows_do_not_interfere():
    sim, hmc, host = _setup()
    rng = random.Random(2)
    flows = {0xC000 + i * 64: [] for i in range(8)}
    expected = {}
    results = {}
    for target in flows:
        exp = 0.0
        for i in range(40):
            v1, v2 = rng.random(), rng.random()
            op = UpdateOp("mac", 0x1000_0000 + rng.randrange(1 << 20) * 8,
                          0x3000_0000 + rng.randrange(1 << 20) * 8, target,
                          src1_value=v1, src2_value=v2)
            host.offload_update(i % 4, op, lambda: None)
            exp += v1 * v2
        expected[target] = exp
    for target in flows:
        for t in range(4):
            host.offload_gather(t, GatherOp(target, 4),
                                lambda v, tgt=target: results.setdefault(tgt, v))
    sim.run_until_idle()
    for target, exp in expected.items():
        assert results[target] == pytest.approx(exp)
    assert host.active_flows == 0
    assert host.outstanding_updates == 0


def test_store_updates_write_memory_without_flows():
    sim, hmc, host = _setup()
    commits = []
    for i in range(20):
        op = UpdateOp("mov", 0x1000_0000 + i * 8, None, 0x5000_0000 + i * 8, src1_value=1.0)
        host.offload_update(0, op, lambda: commits.append(1))
    for i in range(20):
        op = UpdateOp("const_assign", None, None, 0x6000_0000 + i * 8, imm=0.25)
        host.offload_update(0, op, lambda: commits.append(1))
    sim.run_until_idle()
    assert len(commits) == 40
    # No reduction flows were created for store-class updates.
    assert host.active_flows == 0
    store_writes = sum(sim.stats.counter(f"are{c}.store_writes") for c in range(16))
    assert store_writes == 40


def test_gather_with_no_updates_completes_immediately():
    sim, hmc, host = _setup()
    results = []
    for t in range(3):
        host.offload_gather(t, GatherOp(0xDD00, 3), results.append)
    sim.run_until_idle()
    assert results == [0.0, 0.0, 0.0]


def test_art_uses_single_port_and_arf_spreads():
    for scheme, expected_ports in ((Scheme.ART, 1), (Scheme.ARF_TID, 4)):
        sim, hmc, host = _setup(scheme)
        for i in range(40):
            op = UpdateOp("add", 0x1000_0000 + i * 4096 * 3, None, 0xEE00, src1_value=1.0)
            host.offload_update(i % 4, op, lambda: None)
        used_ports = sum(
            1 for p in range(4) if sim.stats.counter(f"arhost.updates_port{p}") > 0)
        assert used_ports == expected_ports
        for t in range(4):
            host.offload_gather(t, GatherOp(0xEE00, 4), lambda v: None)
        sim.run_until_idle()
        assert host.flow_results[0xEE00] == pytest.approx(40.0)


def test_operand_buffer_exhaustion_stalls_but_completes():
    sim, hmc, host = _setup(are_config=AREConfig(operand_buffer_slots=2))
    rng = random.Random(3)
    pairs = [(0x1000_0000 + i * 8 * 131, 0x2000_0000 + i * 8 * 389,
              rng.random(), rng.random()) for i in range(120)]
    expected, commits, results = _offload_flow(sim, host, "mac", pairs, target=0xFF00)
    assert len(commits) == 120
    assert results[0] == pytest.approx(expected)
    stalls = sum(sim.stats.counter(f"are{c}.operand_buffer_stalls") for c in range(16))
    assert stalls > 0
    stall_hist = sim.stats.histogram("ar.update_latency.stall")
    assert stall_hist.mean > 0


def test_roundtrip_latency_recorded():
    sim, hmc, host = _setup()
    pairs = [(0x1000_0000 + i * 8, None, 1.0, 0.0) for i in range(30)]
    _offload_flow(sim, host, "add", pairs, target=0xAB00)
    for component in ("request", "stall", "response", "total"):
        hist = sim.stats.histogram(f"ar.update_latency.{component}")
        assert hist.count == 30


def _single_update_response_mean(alu_latency, two_operand):
    """Response-latency mean for exactly one update at the given ALU latency."""
    sim, hmc, host = _setup(are_config=AREConfig(alu_latency=alu_latency))
    addr2 = 0x2000_0000 if two_operand else None
    opcode = "mac" if two_operand else "add"
    pairs = [(0x1000_0000, addr2, 1.5, 2.0)]
    _offload_flow(sim, host, opcode, pairs, target=0xA100, threads=1)
    hist = sim.stats.histogram("ar.update_latency.response")
    assert hist.count == 1
    return hist.mean


@pytest.mark.parametrize("two_operand", [False, True], ids=["single-operand", "two-operand"])
def test_alu_latency_counted_exactly_once_in_response(two_operand):
    """Raising alu_latency by D must raise the response latency by exactly D on
    both commit paths.  The single-operand path used to count it twice (once in
    the commit event's schedule time, once in _record_roundtrip), overstating
    its response/total breakdown relative to the buffered two-operand path."""
    base = _single_update_response_mean(2.0, two_operand)
    shifted = _single_update_response_mean(12.0, two_operand)
    assert shifted - base == pytest.approx(10.0)


def test_single_and_two_operand_latency_breakdowns_consistent():
    """With identical ALU latency, the two paths may differ only by the cost of
    fetching the second operand — not by an extra ALU latency on one side."""
    alu = 4.0
    single = _single_update_response_mean(alu, two_operand=False)
    double = _single_update_response_mean(alu, two_operand=True)
    # Both are >= one ALU latency; the single-operand local-read path must not
    # exceed the buffered path by carrying a second copy of the ALU latency.
    assert single >= alu and double >= alu
    assert single <= double


def test_commit_for_unknown_update_rejected():
    sim, hmc, host = _setup()
    with pytest.raises(RuntimeError):
        host.notify_update_commit(123456)


def test_flow_tables_empty_after_gather():
    sim, hmc, host = _setup()
    pairs = [(0x1000_0000 + i * 8 * 100, 0x2000_0000 + i * 8 * 100, 1.0, 2.0)
             for i in range(64)]
    _offload_flow(sim, host, "mac", pairs, target=0xCD00)
    for engine in host.engines:
        assert engine.flow_table.occupancy == 0
        assert engine.operand_buffers.in_use == 0
