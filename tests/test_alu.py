"""Unit and property tests for Update opcode semantics and the ALU."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import ALU, OPCODES, OpClass, is_reduce_opcode, opcode_spec
from repro.sim import Simulator

values = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


def test_opcode_registry_contents():
    for name in ("add", "mac", "abs_diff", "min", "max", "mov", "const_assign"):
        assert name in OPCODES
    assert opcode_spec("mac").num_operands == 2
    assert opcode_spec("add").num_operands == 1
    assert opcode_spec("const_assign").num_operands == 0
    assert opcode_spec("mov").op_class is OpClass.STORE
    assert is_reduce_opcode("add") and not is_reduce_opcode("mov")
    with pytest.raises(ValueError):
        opcode_spec("divide")


def test_mac_and_abs_diff_semantics():
    spec = opcode_spec("mac")
    assert spec.combine(3.0, 4.0) == 12.0
    assert spec.accumulate(10.0, 12.0) == 22.0
    spec = opcode_spec("abs_diff")
    assert spec.combine(3.0, 5.0) == 2.0
    assert spec.combine(5.0, 3.0) == 2.0


def test_min_max_identities():
    assert opcode_spec("min").identity == math.inf
    assert opcode_spec("max").identity == -math.inf
    assert opcode_spec("add").identity == 0.0


def test_alu_counts_operations():
    sim = Simulator()
    alu = ALU(sim, "alu", latency=2.0)
    value = alu.combine("mac", 2.0, 5.0)
    acc = alu.accumulate("mac", None, value)
    acc = alu.accumulate("mac", acc, 10.0)
    assert acc == 20.0
    assert sim.stats.counter("alu.ops") == 1
    assert sim.stats.counter("alu.ops.mac") == 1
    assert sim.stats.counter("alu.reductions") == 2


@given(st.lists(values, min_size=1, max_size=50))
def test_add_reduction_is_sum(xs):
    spec = opcode_spec("add")
    acc = spec.identity
    for x in xs:
        acc = spec.accumulate(acc, spec.combine(x, 0.0))
    assert acc == pytest.approx(math.fsum(xs), rel=1e-9, abs=1e-6)


@given(st.lists(values, min_size=1, max_size=50))
def test_min_max_reduction_matches_builtin(xs):
    for name, func in (("min", min), ("max", max)):
        spec = opcode_spec(name)
        acc = spec.identity
        for x in xs:
            acc = spec.accumulate(acc, spec.combine(x, 0.0))
        assert acc == func(xs)


@given(st.lists(st.tuples(values, values), min_size=1, max_size=50))
def test_mac_reduction_associativity_over_partitions(pairs):
    """Splitting a MAC flow across trees and merging partials gives the same sum."""
    spec = opcode_spec("mac")
    full = spec.identity
    for a, b in pairs:
        full = spec.accumulate(full, spec.combine(a, b))
    # Partition into two "trees" and merge their partial results.
    mid = len(pairs) // 2
    partials = []
    for chunk in (pairs[:mid], pairs[mid:]):
        acc = spec.identity
        for a, b in chunk:
            acc = spec.accumulate(acc, spec.combine(a, b))
        partials.append(acc)
    merged = spec.accumulate(spec.accumulate(spec.identity, partials[0]), partials[1])
    assert merged == pytest.approx(full, rel=1e-9, abs=1e-6)
