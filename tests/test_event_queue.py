"""Unit tests for the discrete-event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.event_queue import EventQueue


def test_push_pop_orders_by_time():
    q = EventQueue()
    order = []
    q.push(5.0, lambda: order.append("b"))
    q.push(1.0, lambda: order.append("a"))
    q.push(9.0, lambda: order.append("c"))
    while q:
        q.pop()[2]()
    assert order == ["a", "b", "c"]


def test_same_time_preserves_insertion_order():
    q = EventQueue()
    order = []
    for i in range(10):
        q.push(4.0, lambda i=i: order.append(i))
    while q:
        q.pop()[2]()
    assert order == list(range(10))


def test_negative_time_rejected():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.push(-1.0, lambda: None)
    with pytest.raises(ValueError):
        q.push_handle(-1.0, lambda: None)


def test_push_returns_nothing_on_fast_path():
    q = EventQueue()
    assert q.push(1.0, lambda: None) is None


def test_cancelled_events_are_skipped():
    q = EventQueue()
    fired = []
    handle = q.push_handle(1.0, lambda: fired.append("cancelled"))
    q.push(2.0, lambda: fired.append("kept"))
    assert not handle.cancelled
    handle.cancel()
    assert handle.cancelled
    assert len(q) == 1
    popped = []
    while q:
        entry = q.pop()
        popped.append(entry)
        entry[2]()
    assert fired == ["kept"]
    assert len(popped) == 1


def test_cancel_is_idempotent_and_safe_after_fire():
    q = EventQueue()
    fired = []
    handle = q.push_handle(1.0, lambda: fired.append("ran"))
    handle.cancel()
    handle.cancel()  # double cancel must not corrupt the live count
    assert len(q) == 0

    other = q.push_handle(2.0, lambda: fired.append("other"))
    q.pop()[2]()
    other.cancel()  # cancelling after the event fired is a no-op
    assert fired == ["other"]
    assert len(q) == 0


def test_handle_reports_time():
    q = EventQueue()
    handle = q.push_handle(3.5, lambda: None)
    assert handle.time == 3.5


def test_peek_time_and_len():
    q = EventQueue()
    assert q.peek_time() is None
    assert len(q) == 0
    q.push(3.0, lambda: None)
    q.push(1.5, lambda: None)
    assert q.peek_time() == 1.5
    assert len(q) == 2
    q.clear()
    assert len(q) == 0
    assert not q


def test_peek_time_skips_cancelled_head():
    q = EventQueue()
    head = q.push_handle(1.0, lambda: None)
    q.push(2.0, lambda: None)
    head.cancel()
    assert q.peek_time() == 2.0
    assert len(q) == 1


def test_pop_empty_returns_none():
    assert EventQueue().pop() is None


@given(st.lists(st.floats(min_value=0, max_value=1e7, allow_nan=False), min_size=1, max_size=200))
def test_pop_order_is_always_nondecreasing(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while q:
        popped.append(q.pop()[0])
    assert popped == sorted(popped)
    assert len(popped) == len(times)


def test_cancel_after_clear_is_safe():
    q = EventQueue()
    handle = q.push_handle(1.0, lambda: None)
    q.clear()
    handle.cancel()          # must not corrupt the live count
    assert len(q) == 0
    q.push(2.0, lambda: None)
    assert len(q) == 1
    assert q
