"""Unit tests for the event-scheduler backends.

Every behavioral test runs against both the binary heap and the calendar
queue: the two backends promise the exact same ``[time, seq]`` total order,
so they must be observationally interchangeable.
"""

import pytest
from hypothesis import given, strategies as st

from repro.sim.event_queue import (DEFAULT_SCHEDULER, SCHEDULER_BACKENDS,
                                   CalendarQueue, EventQueue,
                                   make_event_queue, resolve_scheduler)

BACKENDS = sorted(SCHEDULER_BACKENDS)


@pytest.fixture(params=BACKENDS)
def queue(request):
    return SCHEDULER_BACKENDS[request.param]()


def test_push_pop_orders_by_time(queue):
    order = []
    queue.push(5.0, lambda: order.append("b"))
    queue.push(1.0, lambda: order.append("a"))
    queue.push(9.0, lambda: order.append("c"))
    while queue:
        queue.pop()[2]()
    assert order == ["a", "b", "c"]


def test_same_time_preserves_insertion_order(queue):
    order = []
    for i in range(10):
        queue.push(4.0, lambda i=i: order.append(i))
    while queue:
        queue.pop()[2]()
    assert order == list(range(10))


def test_negative_time_rejected(queue):
    with pytest.raises(ValueError):
        queue.push(-1.0, lambda: None)
    with pytest.raises(ValueError):
        queue.push_handle(-1.0, lambda: None)


def test_push_returns_nothing_on_fast_path(queue):
    assert queue.push(1.0, lambda: None) is None


def test_cancelled_events_are_skipped(queue):
    fired = []
    handle = queue.push_handle(1.0, lambda: fired.append("cancelled"))
    queue.push(2.0, lambda: fired.append("kept"))
    assert not handle.cancelled
    handle.cancel()
    assert handle.cancelled
    assert len(queue) == 1
    popped = []
    while queue:
        entry = queue.pop()
        popped.append(entry)
        entry[2]()
    assert fired == ["kept"]
    assert len(popped) == 1


def test_cancel_is_idempotent_and_safe_after_fire(queue):
    fired = []
    handle = queue.push_handle(1.0, lambda: fired.append("ran"))
    handle.cancel()
    handle.cancel()  # double cancel must not corrupt the live count
    assert len(queue) == 0

    other = queue.push_handle(2.0, lambda: fired.append("other"))
    queue.pop()[2]()
    other.cancel()  # cancelling after the event fired is a no-op
    assert fired == ["other"]
    assert len(queue) == 0


def test_handle_reports_time(queue):
    handle = queue.push_handle(3.5, lambda: None)
    assert handle.time == 3.5


def test_peek_time_and_len(queue):
    assert queue.peek_time() is None
    assert len(queue) == 0
    queue.push(3.0, lambda: None)
    queue.push(1.5, lambda: None)
    assert queue.peek_time() == 1.5
    assert len(queue) == 2
    queue.clear()
    assert len(queue) == 0
    assert not queue


def test_peek_time_skips_cancelled_head(queue):
    head = queue.push_handle(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    head.cancel()
    assert queue.peek_time() == 2.0
    assert len(queue) == 1


def test_pop_empty_returns_none(queue):
    assert queue.pop() is None


def test_pop_does_not_share_the_live_entry(queue):
    """pop() hands back a fresh entry; the stored one is nulled so a late
    handle cancel cannot corrupt the returned callback."""
    handle = queue.push_handle(1.0, lambda: None)
    entry = queue.pop()
    assert entry[2] is not None
    handle.cancel()          # fires after the pop: must be a no-op
    assert entry[2] is not None
    assert len(queue) == 0


def test_cancel_after_clear_is_safe(queue):
    handle = queue.push_handle(1.0, lambda: None)
    queue.clear()
    handle.cancel()          # must not corrupt the live count
    assert len(queue) == 0
    queue.push(2.0, lambda: None)
    assert len(queue) == 1
    assert queue


def test_push_behind_a_popped_time_still_pops_in_order(queue):
    """The raw queue API allows pushing earlier than the last popped time;
    both backends must keep returning the global minimum."""
    queue.push(100.0, lambda: None)
    queue.push(500.0, lambda: None)
    assert queue.pop()[0] == 100.0
    queue.push(1.0, lambda: None)        # far behind the last pop
    queue.push(200.0, lambda: None)
    assert [queue.pop()[0] for _ in range(3)] == [1.0, 200.0, 500.0]


@pytest.mark.parametrize("backend", BACKENDS)
@given(st.lists(st.floats(min_value=0, max_value=1e7, allow_nan=False),
                min_size=1, max_size=200))
def test_pop_order_is_always_nondecreasing(backend, times):
    q = SCHEDULER_BACKENDS[backend]()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while q:
        popped.append(q.pop()[0])
    assert popped == sorted(popped)
    assert len(popped) == len(times)


# -- cross-backend equivalence ---------------------------------------------------

_EVENT_TIMES = st.floats(min_value=0, max_value=1e6, allow_nan=False)
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _EVENT_TIMES, st.booleans()),
        st.tuples(st.just("pop")),
        st.tuples(st.just("peek")),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=30)),
    ),
    min_size=1, max_size=150,
)


@given(_OPS)
def test_calendar_queue_matches_heap_exactly(ops):
    """Golden cross-backend equivalence: any interleaving of pushes (handled
    or not), pops, peeks and cancels yields the identical [time, seq] pop
    sequence and live counts on both backends."""
    heap, calendar = EventQueue(), CalendarQueue()
    handles = []
    for op in ops:
        if op[0] == "push":
            _, time, with_handle = op
            if with_handle:
                handles.append((heap.push_handle(time, lambda: None),
                                calendar.push_handle(time, lambda: None)))
            else:
                heap.push(time, lambda: None)
                calendar.push(time, lambda: None)
        elif op[0] == "pop":
            a, b = heap.pop(), calendar.pop()
            assert (a is None) == (b is None)
            if a is not None:
                assert a[:2] == b[:2]
        elif op[0] == "peek":
            assert heap.peek_time() == calendar.peek_time()
        else:  # cancel
            if handles:
                h1, h2 = handles.pop(op[1] % len(handles))
                h1.cancel()
                h2.cancel()
        assert len(heap) == len(calendar)
        assert bool(heap) == bool(calendar)
    while True:
        a, b = heap.pop(), calendar.pop()
        assert (a is None) == (b is None)
        if a is None:
            break
        assert a[:2] == b[:2]


def test_calendar_flood_drain_compacts_the_spine():
    """Draining a same-timestamp flood must not shift the whole spine per pop
    (quadratic) nor retain the consumed prefix: the physical spine stays
    within a small factor of the live tail, and pushes landing mid-drain
    (even behind already-popped times) still pop in order."""
    q = CalendarQueue()
    for _ in range(5000):
        q.push(100.0, lambda: None)
    for _ in range(2500):
        q.pop()
    assert len(q._spine) - q._spine_pos == len(q) == 2500
    assert len(q._spine) <= 2 * len(q) + 128    # consumed prefix compacted
    q.push(50.0, lambda: None)                  # behind every popped time
    q.push(100.0, lambda: None)                 # ties break by insertion seq
    assert q.pop()[0] == 50.0
    drained = [q.pop()[:2] for _ in range(len(q))]
    assert drained == sorted(drained)
    assert q.pop() is None


def test_calendar_narrow_with_active_spine_keeps_order():
    """Regression: a _narrow() while the spine still holds live entries must
    not leave the horizon inside the spine's time range — a later spine-range
    push would land in the calendar and dispatch after later spine entries.
    Surfaced as a SimulationError ('scheduled in the past') in smoke runs."""
    heap, cal = EventQueue(), CalendarQueue()

    def push(t):
        heap.push(t, lambda: None)
        cal.push(t, lambda: None)

    for i in range(10):                      # one initial-width day (no. 2)
        push(130.0 + i * 6.875)              # 130 .. 191.875
    assert heap.pop()[:2] == cal.pop()[:2]   # promotes it: spine now active
    for i in range(520):                     # adjacent hot day -> narrows
        push(192.05 + i * 0.119)
    push(191.5)                              # inside the live spine's range
    drained = []
    while heap:
        a, b = heap.pop(), cal.pop()
        assert a[:2] == b[:2]
        drained.append(a[0])
    assert drained == sorted(drained)
    assert cal.pop() is None


def test_calendar_clear_restores_initial_geometry():
    """clear() must undo a _narrow()-shrunken day width: a reset simulator
    would otherwise inherit pathologically fine one-event days."""
    q = CalendarQueue()
    for i in range(600):  # one hot day spanning nonzero time -> narrows
        q.push(1000.0 + i * 0.001, lambda: None)
    assert q._width < q._initial_width
    q.clear()
    assert q._width == q._initial_width
    assert q._horizon_day == 0 and len(q) == 0
    # ...and the queue still orders correctly afterwards.
    heap = EventQueue()
    for t in (5.0, 1.0, 9.0, 1.0):
        q.push(t, lambda: None)
        heap.push(t, lambda: None)
    while heap:
        assert q.pop()[0] == heap.pop()[0]


def test_calendar_same_time_flood_and_narrow_keep_order():
    """A same-timestamp flood (unsplittable) and a wide spread (which narrows
    the day width) must both preserve the heap's order exactly."""
    for times in ([100.0] * 2000,
                  [(i * 37 % 1000) * 0.25 for i in range(2000)]):
        heap, calendar = EventQueue(), CalendarQueue()
        for t in times:
            heap.push(t, lambda: None)
            calendar.push(t, lambda: None)
        while heap:
            assert heap.pop()[:2] == calendar.pop()[:2]
        assert calendar.pop() is None


# -- backend registry ------------------------------------------------------------

def test_registry_and_default():
    assert set(SCHEDULER_BACKENDS) == {"heap", "calendar"}
    assert DEFAULT_SCHEDULER == "heap"
    assert isinstance(make_event_queue("heap"), EventQueue)
    assert isinstance(make_event_queue("calendar"), CalendarQueue)


def test_resolve_scheduler_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    assert resolve_scheduler() == "heap"
    monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
    assert resolve_scheduler() == "calendar"
    assert resolve_scheduler("heap") == "heap"   # explicit beats the env
    assert resolve_scheduler(" Calendar ") == "calendar"
    with pytest.raises(ValueError, match="unknown scheduler"):
        resolve_scheduler("splay-tree")
    monkeypatch.setenv("REPRO_SCHEDULER", "nonsense")
    with pytest.raises(ValueError, match="unknown scheduler"):
        resolve_scheduler()
