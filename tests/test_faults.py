"""Fault injection: the parking drop rule, the injector, and determinism.

The drop rule these tests pin is: **a hop is interrupted iff its link is down
at the instant the packet would use it** — at submission (the packet parks
without transmitting) or at arrival (the in-flight packet parks at the far
end's edge).  Parked packets drain at recovery in per-link FIFO order,
in-flight casualties first, so an outage never reorders traffic on a link —
the invariant the Active-Routing gather protocol depends on.
"""

import pytest

from repro.network import (
    FaultInjector,
    MemReadPacket,
    MemoryNetwork,
    RoutingError,
    ScheduledFault,
    UpdatePacket,
    build_chain,
    build_mesh,
)
from repro.sim import Simulator
from repro.system import make_system_config, run_workload

TINY_PAGERANK = {"num_vertices": 96, "avg_degree": 4}


class _Sink:
    """Endpoint that consumes packets destined to it and forwards the rest."""

    def __init__(self, node_id, network=None):
        self.node_id = node_id
        self.network = network
        self.received = []

    def receive_packet(self, packet, from_node):
        if packet.dst == self.node_id or self.network is None:
            self.received.append((packet, from_node))
        else:
            self.network.forward(packet, self.node_id)


def _build(routing="resilient", rows=2, cols=2):
    sim = Simulator()
    topo = build_mesh(rows=rows, cols=cols, num_controllers=1)
    net = MemoryNetwork(sim, topo, routing=routing)
    sinks = {n: _Sink(n, net) for n in topo.graph.nodes}
    for n, sink in sinks.items():
        net.register_endpoint(n, sink)
    return sim, topo, net, sinks


def _update(src, dst):
    """A tree-routed packet (Updates pin to the pristine routes)."""
    return UpdatePacket(src=src, dst=dst, opcode="mac", target_addr=0x200,
                        src1_addr=0x10, src2_addr=0x20)


def _arm_fault_mode(net, a=0, b=1):
    """Toggle a link down/up so the fault-aware hop path is active.

    Hops in flight at the run's *first* state change were scheduled by the
    fast path and complete unconditionally; the arrival-instant drop rule the
    tests below pin applies from fault-mode activation onward.
    """
    net.set_link_state(a, b, False)
    net.set_link_state(a, b, True)


# -- ScheduledFault validation ------------------------------------------------
def test_scheduled_fault_validation():
    with pytest.raises(ValueError):
        ScheduledFault(time=0.0, kind="router", target=3)
    with pytest.raises(ValueError):
        ScheduledFault(time=-1.0, kind="link", target=(0, 1))
    ScheduledFault(time=0.0, kind="link", target=(0, 1))  # valid


# -- policy contract ----------------------------------------------------------
def test_static_policy_refuses_link_state_changes():
    sim, topo, net, sinks = _build(routing="static")
    with pytest.raises(RoutingError):
        net.set_link_state(0, 1, False)
    # Refusal is atomic: no state changed, the link pair is still up.
    assert net.links[(0, 1)].up and net.links[(1, 0)].up


def test_failure_rate_requires_fault_capable_policy():
    with pytest.raises(ValueError):
        make_system_config("ARF-tid", failure_rate=1.0)  # implies static
    make_system_config("ARF-tid", routing="resilient", failure_rate=1.0)


# -- the parking drop rule ----------------------------------------------------
def test_down_link_parks_pinned_submission_until_recovery():
    sim, topo, net, sinks = _build()
    pinned = net.routing.next_hop(0, 3)
    net.set_link_state(0, pinned, False)
    packet = _update(0, 3)
    net.inject(packet, 0)
    sim.run_until_idle()
    # Down at the submission instant: parked, not transmitted, not delivered.
    assert sinks[3].received == []
    assert net.stat("dropped") == 1
    net.set_link_state(0, pinned, True)
    sim.run_until_idle()
    delivered, _ = sinks[3].received[0]
    assert delivered is packet


def test_free_routed_packets_reroute_over_live_links():
    sim, topo, net, sinks = _build()
    pinned = net.routing.next_hop(0, 3)
    net.set_link_state(0, pinned, False)
    packet = MemReadPacket(src=0, dst=3, addr=0x40)
    net.inject(packet, 0)
    sim.run_until_idle()
    # The live tables route around the dead link: delivered, nothing dropped.
    assert len(sinks[3].received) == 1
    assert net.stat("dropped") == 0
    assert packet.hops == 2  # the detour is still a shortest live path


def test_in_flight_packet_parks_at_arrival_instant():
    sim, topo, net, sinks = _build()
    _arm_fault_mode(net)
    first_hop = net.routing.next_hop(0, 3)
    packet = MemReadPacket(src=0, dst=3, addr=0x40)
    # Fail the first-hop link while the packet is on the wire (arrival is
    # serialization + latency + router delay, comfortably after t=1).
    sim.schedule_at(1.0, lambda: net.set_link_state(0, first_hop, False))
    sim.schedule_at(50.0, lambda: net.set_link_state(0, first_hop, True))
    net.inject(packet, 0)
    sim.run_until_idle()
    assert len(sinks[3].received) == 1
    assert net.stat("dropped") == 1  # the arrival-instant interruption
    assert sim.now > 50.0            # delivery had to wait for the recovery


def test_outage_preserves_per_link_fifo_order():
    sim, topo, net, sinks = _build(rows=1, cols=2)
    _arm_fault_mode(net)
    packets = [_update(0, 1) for _ in range(6)]
    # All six submit at t=0 and serialize back to back; the outage window
    # catches some in flight and the recovery drains them in order.
    for p in packets:
        net.inject(p, 0)
    sim.schedule_at(6.0, lambda: net.set_link_state(0, 1, False))
    sim.schedule_at(120.0, lambda: net.set_link_state(0, 1, True))
    sim.run_until_idle()
    received = [p.pkt_id for p, _ in sinks[1].received]
    assert received == [p.pkt_id for p in packets]
    assert net.stat("dropped") > 0  # the outage did interrupt something


def test_cube_failure_keeps_one_degraded_attachment():
    sim, topo, net, sinks = _build()
    neighbors = sorted(topo.graph.neighbors(3))
    net.set_cube_state(3, False)
    live = [n for n in neighbors if net.links[(3, n)].up]
    assert live == [neighbors[0]]  # exactly the lowest-id attachment survives
    net.set_cube_state(3, True)
    assert all(net.links[(3, n)].up for n in neighbors)


# -- the injector -------------------------------------------------------------
def test_scheduled_timeline_applies_and_recovers():
    sim, topo, net, sinks = _build()
    injector = FaultInjector(sim, net, schedule=[
        ScheduledFault(time=10.0, kind="link", target=(0, 1)),
        ScheduledFault(time=50.0, kind="link", target=(0, 1), up=True),
    ])
    injector.arm()
    sim.run_until_idle()
    assert injector.injected == 1
    assert net.links[(0, 1)].up  # the recovery applied


def test_quiesced_injector_still_applies_recovery():
    # A packet parked on a down link can only drain at the scheduled
    # recovery; the injector firing into an empty event queue quiesces the
    # *random* process but must still apply explicit state changes.
    sim, topo, net, sinks = _build()
    pinned = net.routing.next_hop(0, 3)
    injector = FaultInjector(sim, net, schedule=[
        ScheduledFault(time=5.0, kind="link", target=(0, pinned)),
        ScheduledFault(time=400.0, kind="link", target=(0, pinned), up=True),
    ])
    injector.arm()
    packet = _update(0, 3)
    sim.schedule_at(10.0, lambda: net.inject(packet, 0))
    sim.run_until_idle()
    assert len(sinks[3].received) == 1  # delivered after the late recovery
    assert sim.now >= 400.0


def test_connectivity_guard_never_picks_a_bridge():
    # Every link of a chain is a bridge: the random process must always skip.
    sim = Simulator()
    topo = build_chain(num_cubes=4, num_controllers=1)
    net = MemoryNetwork(sim, topo, routing="resilient")
    injector = FaultInjector(sim, net, failure_rate=5.0, seed=3)
    for _ in range(25):
        assert injector._pick_victim() is None


def test_random_victims_keep_the_network_connected():
    sim, topo, net, sinks = _build()
    controller = topo.controller_nodes[0]
    attach = topo.controller_attach[controller]
    injector = FaultInjector(sim, net, failure_rate=5.0, seed=3)
    for _ in range(50):
        victim = injector._pick_victim()
        assert victim is not None
        # The controller's single attachment is a bridge; never chosen.
        assert set(victim) != {controller, attach}


def test_random_timeline_is_a_pure_function_of_the_seed():
    def timeline(seed):
        sim, topo, net, sinks = _build()
        injector = FaultInjector(sim, net, failure_rate=5.0, seed=seed)
        events = []
        for _ in range(6):
            injector._apply(("random",), now=float(len(events)))
            events.append(sorted(injector._agenda)[0][0])
        return (injector.injected, injector.skipped, events)

    assert timeline(7) == timeline(7)
    assert timeline(7) != timeline(8)


# -- full-system behaviour ----------------------------------------------------
def test_full_system_fixed_seed_reproduces_identical_results():
    config = make_system_config("ARF-tid", routing="resilient",
                                failure_rate=10.0, failure_seed=7)
    first = run_workload(config, "pagerank", num_threads=4, **TINY_PAGERANK)
    second = run_workload(config, "pagerank", num_threads=4, **TINY_PAGERANK)
    assert first.cycles == second.cycles
    assert first.events_executed == second.events_executed
    assert first.network_stats == second.network_stats
    assert first.flows_verified
    stats = first.network_stats
    assert stats["dropped"] > 0
    assert 0.0 < stats["delivered_fraction"] < 1.0
    assert stats["delivered_fraction"] == 1.0 - stats["dropped"] / stats["hops"]


def test_full_system_different_seeds_diverge():
    base = dict(routing="resilient", failure_rate=10.0)
    first = run_workload(make_system_config("ARF-tid", failure_seed=7, **base),
                         "pagerank", num_threads=4, **TINY_PAGERANK)
    second = run_workload(make_system_config("ARF-tid", failure_seed=8, **base),
                          "pagerank", num_threads=4, **TINY_PAGERANK)
    assert first.flows_verified and second.flows_verified
    # The failure timeline is the seed's function; distinct seeds must not
    # collapse onto one timeline (cycles or drop counts will differ).
    assert (first.cycles, first.network_stats["dropped"]) != \
           (second.cycles, second.network_stats["dropped"])


def test_failure_free_lockstep_static_equals_resilient():
    static = run_workload(make_system_config("ARF-tid"),
                          "pagerank", num_threads=4, **TINY_PAGERANK)
    resilient = run_workload(make_system_config("ARF-tid", routing="resilient"),
                             "pagerank", num_threads=4, **TINY_PAGERANK)
    assert static.cycles == resilient.cycles
    assert static.events_executed == resilient.events_executed
    assert static.summary() == resilient.summary()
