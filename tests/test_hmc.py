"""Unit tests for the HMC substrate: vaults, cubes, controllers, memory system."""

import pytest

from repro.hmc import HMCConfig, HMCMemorySystem, VaultController
from repro.mem import HMCAddressMapping, MemoryRequest
from repro.network.packet import MemReadPacket, MemWritePacket, PacketType


def test_vault_serializes_and_accounts_energy(sim):
    mapping = HMCAddressMapping()
    vault = VaultController(sim, cube_id=0, vault_id=0, mapping=mapping, config=HMCConfig())
    f1 = vault.service(addr=0x0, size=64, is_write=False)
    f2 = vault.service(addr=0x0, size=64, is_write=True)
    assert f2 > f1 > 0
    assert sim.stats.counter(f"{vault.name}.accesses") == 2
    assert sim.stats.counter(f"{vault.name}.energy_pj") == pytest.approx(2 * 64 * 8 * 12.0)


def test_hmc_memory_system_structure(hmc_memory):
    assert len(hmc_memory.cubes) == 16
    assert len(hmc_memory.controllers) == 4
    assert hmc_memory.is_network_memory
    assert hmc_memory.num_ports == 4
    # Every controller attaches to a distinct cube.
    attached = {c.attached_cube for c in hmc_memory.controllers}
    assert len(attached) == 4


def test_hmc_read_roundtrip(sim, hmc_memory):
    done = []
    req = MemoryRequest(addr=0x1234_0000, on_complete=lambda r: done.append(r.latency))
    hmc_memory.access(req)
    sim.run_until_idle()
    assert len(done) == 1
    assert 40 < done[0] < 600
    assert sim.stats.counter("network.bytes") > 0


def test_hmc_write_roundtrip(sim, hmc_memory):
    done = []
    from repro.mem import AccessType
    req = MemoryRequest(addr=0x5678_0000, access_type=AccessType.NORMAL_WRITE,
                        on_complete=lambda r: done.append(r))
    hmc_memory.access(req)
    sim.run_until_idle()
    assert len(done) == 1


def test_many_requests_all_complete(sim, hmc_memory):
    done = []
    for i in range(200):
        hmc_memory.access(MemoryRequest(addr=i * 4096 + (i % 7) * 64,
                                        on_complete=lambda r: done.append(r.req_id)))
    sim.run_until_idle()
    assert len(done) == 200
    assert len(set(done)) == 200


def test_cube_serves_local_read_and_responds(sim, hmc_memory):
    controller = hmc_memory.controllers[0]
    cube_id = hmc_memory.cube_of(0x9999_0000)
    packet = MemReadPacket(src=controller.node_id, dst=cube_id, addr=0x9999_0000, req_id=1)
    # Inject directly; the controller should raise because it has no matching
    # outstanding request, proving responses are correlated by request id.
    hmc_memory.network.inject(packet, controller.node_id)
    with pytest.raises(RuntimeError):
        sim.run_until_idle()


def test_cube_rejects_active_packet_without_engine(sim, hmc_memory):
    from repro.network.packet import UpdatePacket
    cube = hmc_memory.cubes[0]
    packet = UpdatePacket(src=16, dst=0, opcode="add", target_addr=0x100, src1_addr=0x40)
    with pytest.raises(RuntimeError):
        cube.receive_packet(packet, from_node=16)


def test_controller_interleaving(hmc_memory):
    controllers = {hmc_memory.controller_for_address(page * 4096).port_id
                   for page in range(32)}
    assert controllers == {0, 1, 2, 3}
    assert hmc_memory.controller_for_port(5).port_id == 1


# -- network shape as an experiment dimension ------------------------------------

def test_hmc_memory_honors_exact_cube_counts(sim):
    from repro.hmc import HMCNetworkConfig

    net = HMCNetworkConfig(topology="mesh", num_cubes=8)
    memory = HMCMemorySystem(sim, net_config=net)
    assert len(memory.cubes) == 8                      # 2x4, not a rounded 3x3
    assert memory.mapping.num_cubes == 8
    assert memory.topology.name == "mesh2x4"


def test_hmc_memory_rejects_impossible_shapes_up_front(sim):
    from repro.hmc import HMCNetworkConfig

    with pytest.raises(ValueError, match="exactly 18 cubes"):
        HMCMemorySystem(sim, net_config=HMCNetworkConfig(num_cubes=18))


def test_hmc_memory_rejects_mapping_topology_divergence(sim):
    from repro.hmc import HMCNetworkConfig
    from repro.network import build_mesh

    # A hand-passed topology that disagrees with the network config (and hence
    # the mapping) must fail at construction, not mid-run inside routing.
    topo = build_mesh(rows=3, cols=3, num_controllers=4)
    with pytest.raises(ValueError, match="9"):
        HMCMemorySystem(sim, net_config=HMCNetworkConfig(num_cubes=16),
                        topology=topo)


def test_hmc_variant_network_serves_requests(sim):
    from repro.hmc import HMCNetworkConfig

    net = HMCNetworkConfig(topology="torus", num_cubes=8)
    memory = HMCMemorySystem(sim, net_config=net)
    done = []
    for page in range(16):
        memory.access(MemoryRequest(addr=page * 4096,
                                    on_complete=lambda r: done.append(r.latency)))
    sim.run_until_idle()
    assert len(done) == 16
    assert all(latency > 0 for latency in done)
