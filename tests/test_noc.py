"""Unit tests for the on-chip mesh model."""

import pytest

from repro.cpu import MeshNoC
from repro.sim import Simulator


def test_coords_and_hops(sim):
    noc = MeshNoC(sim, rows=4, cols=4)
    assert noc.num_tiles == 16
    assert noc.coords(0) == (0, 0)
    assert noc.coords(5) == (1, 1)
    assert noc.hops(0, 15) == 6
    assert noc.hops(3, 3) == 0
    with pytest.raises(ValueError):
        noc.coords(16)


def test_corner_tiles_and_mc_placement(sim):
    noc = MeshNoC(sim, rows=4, cols=4)
    assert noc.corner_tiles() == [0, 3, 12, 15]
    assert noc.mc_tile(0) == 0
    assert noc.mc_tile(3) == 15
    small = MeshNoC(sim, rows=1, cols=1)
    assert small.corner_tiles() == [0]


def test_transfer_latency_and_energy(sim):
    noc = MeshNoC(sim, rows=2, cols=2, hop_latency=3.0, energy_pj_per_byte_hop=1.0)
    latency = noc.transfer(0, 3, size_bytes=64)
    assert latency == 2 * 3.0
    assert sim.stats.counter("noc.byte_hops") == 128
    assert sim.stats.counter("noc.energy_pj") == 128
    rt = noc.round_trip(0, 3, 16, 64)
    assert rt == pytest.approx(2 * 2 * 3.0)


def test_invalid_mesh(sim):
    with pytest.raises(ValueError):
        MeshNoC(sim, rows=0, cols=4)
