"""Unit tests for the ISA extension trace format and the trace builder."""

import pytest

from repro.isa import (
    AtomicOp,
    BarrierOp,
    ComputeOp,
    GatherOp,
    LoadOp,
    StoreOp,
    TraceBuilder,
    UpdateOp,
    count_instructions,
    count_kinds,
    make_program,
)


def test_operation_constructors_validate():
    with pytest.raises(ValueError):
        ComputeOp(-1)
    with pytest.raises(ValueError):
        GatherOp(0x10, 0)
    with pytest.raises(ValueError):
        BarrierOp(0, 0)


def test_update_operand_count():
    assert UpdateOp("mac", 0x1, 0x2, 0x3).num_operands == 2
    assert UpdateOp("add", 0x1, None, 0x3).num_operands == 1
    assert UpdateOp("const_assign", None, None, 0x3).num_operands == 0


def test_builder_coalesces_compute():
    builder = TraceBuilder(0)
    builder.compute(2).compute(3).load(0x40).compute(1)
    ops = builder.build()
    assert len(ops) == 3
    assert isinstance(ops[0], ComputeOp) and ops[0].cycles == 5
    assert isinstance(ops[1], LoadOp)
    assert isinstance(ops[2], ComputeOp)


def test_builder_emits_all_kinds():
    builder = (TraceBuilder(0)
               .load(0x10).store(0x20).atomic(0x30)
               .update("add", 0x40, None, 0x50)
               .gather(0x50, 2)
               .barrier(1, 2)
               .phase("p"))
    kinds = count_kinds(builder.build())
    for kind in ("LoadOp", "StoreOp", "AtomicOp", "UpdateOp", "GatherOp",
                 "BarrierOp", "PhaseMarkerOp"):
        assert kinds[kind] == 1


def test_instruction_counting():
    trace = [ComputeOp(4, instructions=4), LoadOp(0), AtomicOp(0)]
    assert count_instructions(trace) == 4 + 1 + 2


def test_program_validation_accepts_store_after_gather():
    builder = TraceBuilder(0)
    builder.update("add", 0x10, None, 0x99)
    builder.gather(0x99, 1)
    builder.update("const_assign", None, None, 0x99, imm=1.0)   # store is fine
    program = make_program("ok", "active", [builder])
    assert program.total_operations() == 3


def test_program_validation_rejects_update_after_gather():
    builder = TraceBuilder(0)
    builder.update("add", 0x10, None, 0x99)
    builder.gather(0x99, 1)
    builder.update("add", 0x18, None, 0x99)
    with pytest.raises(ValueError):
        make_program("bad", "active", [builder])


def test_program_validation_rejects_bad_mode_and_empty():
    with pytest.raises(ValueError):
        make_program("x", "weird", [TraceBuilder(0)])
    from repro.isa.program import ProgramTrace
    with pytest.raises(ValueError):
        ProgramTrace(name="x", mode="active", threads=[]).validate()


def test_program_counts():
    builders = [TraceBuilder(t) for t in range(2)]
    for b in builders:
        b.compute(4).load(0x100).update("add", 0x10, None, 0x20)
    program = make_program("p", "active", builders, metadata={"k": 1})
    assert program.num_threads == 2
    assert program.total_operations() == 6
    assert program.operations_of(LoadOp) == 2
    assert program.metadata["k"] == 1
