"""Unit and property tests for deterministic minimal routing."""

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro.network import RoutingTable, Topology, build_dragonfly, build_mesh

TOPO = build_dragonfly()
TABLE = RoutingTable(TOPO)
NODES = sorted(TOPO.graph.nodes)


def test_path_endpoints_and_adjacency():
    for src in NODES[:6]:
        for dst in NODES[-6:]:
            path = TABLE.path(src, dst)
            assert path[0] == src and path[-1] == dst
            for a, b in zip(path, path[1:]):
                assert TOPO.graph.has_edge(a, b)


def test_paths_are_shortest():
    for src in (0, 5, 16):
        for dst in (3, 10, 19):
            expected = nx.shortest_path_length(TOPO.graph, src, dst)
            assert TABLE.distance(src, dst) == expected


def test_path_to_self():
    assert TABLE.path(7, 7) == [7]
    assert TABLE.next_hop(7, 7) == 7
    assert TABLE.distance(7, 7) == 0


def test_determinism_across_instances():
    other = RoutingTable(build_dragonfly())
    for src in NODES:
        for dst in NODES:
            assert TABLE.path(src, dst) == other.path(src, dst)


def test_split_point_properties_mesh():
    mesh = build_mesh()
    table = RoutingTable(mesh)
    root = mesh.controller_attach[mesh.controller_nodes[0]]
    for a in range(0, 16, 3):
        for b in range(1, 16, 5):
            split = table.split_point(root, a, b)
            # The split point lies on both routes.
            assert split in table.path(root, a)
            assert split in table.path(root, b)
            # Splitting at the root is always legal; any other node must be a
            # common prefix node of both deterministic paths.
            path_a, path_b = table.path(root, a), table.path(root, b)
            prefix_len = len(path_a[:path_a.index(split) + 1])
            assert path_a[:prefix_len] == path_b[:prefix_len]


def test_split_point_same_destination():
    assert TABLE.split_point(16, 9, 9) == 9


def test_nearest():
    assert TABLE.nearest(0, [0, 5, 9]) == 0
    with pytest.raises(ValueError):
        TABLE.nearest(0, [])


@given(st.sampled_from(NODES), st.sampled_from(NODES))
def test_distance_symmetric_in_hops(src, dst):
    # Paths may differ by direction, but minimal hop counts must agree.
    assert TABLE.distance(src, dst) == TABLE.distance(dst, src)


@given(st.sampled_from(NODES), st.sampled_from(NODES), st.sampled_from(NODES))
def test_split_point_is_on_both_paths(root, a, b):
    split = TABLE.split_point(root, a, b)
    assert split in TABLE.path(root, a)
    assert split in TABLE.path(root, b)


def _bfs_reference_paths(topo):
    """Independent deterministic-BFS path reconstruction (the construction the
    dense tables must reproduce exactly): ascending-neighbour BFS per root."""
    from collections import deque

    paths = {}
    for root in sorted(topo.graph.nodes):
        parent = {root: root}
        queue = deque([root])
        while queue:
            current = queue.popleft()
            for neighbor in sorted(topo.graph.neighbors(current)):
                if neighbor not in parent:
                    parent[neighbor] = current
                    queue.append(neighbor)
        for dst in parent:
            node, reverse = dst, [dst]
            while node != root:
                node = parent[node]
                reverse.append(node)
            paths[(root, dst)] = list(reversed(reverse))
    return paths


@pytest.mark.parametrize("build", [build_dragonfly, build_mesh])
def test_dense_tables_match_bfs_construction(build):
    topo = build()
    table = RoutingTable(topo)
    reference = _bfs_reference_paths(topo)
    for (src, dst), expected_path in reference.items():
        assert table.path(src, dst) == expected_path
        assert table.distance(src, dst) == len(expected_path) - 1
        expected_hop = expected_path[1] if len(expected_path) > 1 else src
        assert table.next_hop(src, dst) == expected_hop
        assert table.next_hop_table[src][dst] == expected_hop


def test_next_hop_unknown_destination_raises():
    with pytest.raises(ValueError):
        TABLE.next_hop(0, 10_000)
    with pytest.raises(ValueError):
        TABLE.distance(0, 10_000)


def test_nearest_unreachable_candidate_raises():
    disconnected = nx.Graph()
    disconnected.add_nodes_from([0, 1, 2, 3])
    disconnected.add_edge(0, 1)
    disconnected.add_edge(2, 3)
    topo = Topology(name="split", num_cubes=4, graph=disconnected)
    table = RoutingTable(topo)
    assert table.nearest(0, [0, 1]) == 0
    with pytest.raises(ValueError):
        table.nearest(0, [2])        # unreachable must not win the comparison
    with pytest.raises(ValueError):
        table.nearest(0, [1, 2])


def test_negative_node_ids_rejected():
    # Python's negative indexing must not leak wrong routes (NO_ROUTE is -1).
    with pytest.raises(ValueError):
        TABLE.next_hop(0, -1)
    with pytest.raises(ValueError):
        TABLE.distance(-1, 0)
