"""Unit and property tests for deterministic minimal routing."""

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro.network import RoutingTable, build_dragonfly, build_mesh

TOPO = build_dragonfly()
TABLE = RoutingTable(TOPO)
NODES = sorted(TOPO.graph.nodes)


def test_path_endpoints_and_adjacency():
    for src in NODES[:6]:
        for dst in NODES[-6:]:
            path = TABLE.path(src, dst)
            assert path[0] == src and path[-1] == dst
            for a, b in zip(path, path[1:]):
                assert TOPO.graph.has_edge(a, b)


def test_paths_are_shortest():
    for src in (0, 5, 16):
        for dst in (3, 10, 19):
            expected = nx.shortest_path_length(TOPO.graph, src, dst)
            assert TABLE.distance(src, dst) == expected


def test_path_to_self():
    assert TABLE.path(7, 7) == [7]
    assert TABLE.next_hop(7, 7) == 7
    assert TABLE.distance(7, 7) == 0


def test_determinism_across_instances():
    other = RoutingTable(build_dragonfly())
    for src in NODES:
        for dst in NODES:
            assert TABLE.path(src, dst) == other.path(src, dst)


def test_split_point_properties_mesh():
    mesh = build_mesh()
    table = RoutingTable(mesh)
    root = mesh.controller_attach[mesh.controller_nodes[0]]
    for a in range(0, 16, 3):
        for b in range(1, 16, 5):
            split = table.split_point(root, a, b)
            # The split point lies on both routes.
            assert split in table.path(root, a)
            assert split in table.path(root, b)
            # Splitting at the root is always legal; any other node must be a
            # common prefix node of both deterministic paths.
            path_a, path_b = table.path(root, a), table.path(root, b)
            prefix_len = len(path_a[:path_a.index(split) + 1])
            assert path_a[:prefix_len] == path_b[:prefix_len]


def test_split_point_same_destination():
    assert TABLE.split_point(16, 9, 9) == 9


def test_nearest():
    assert TABLE.nearest(0, [0, 5, 9]) == 0
    with pytest.raises(ValueError):
        TABLE.nearest(0, [])


@given(st.sampled_from(NODES), st.sampled_from(NODES))
def test_distance_symmetric_in_hops(src, dst):
    # Paths may differ by direction, but minimal hop counts must agree.
    assert TABLE.distance(src, dst) == TABLE.distance(dst, src)


@given(st.sampled_from(NODES), st.sampled_from(NODES), st.sampled_from(NODES))
def test_split_point_is_on_both_paths(root, a, b):
    split = TABLE.split_point(root, a, b)
    assert split in TABLE.path(root, a)
    assert split in TABLE.path(root, b)
