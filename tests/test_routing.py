"""Unit and property tests for deterministic minimal routing.

Covers the dense static tables, the pinned tie-breaking contracts
(``nearest``/``split_point``), the routing-policy registry, and the resilient
and adaptive policies' pristine/live table split.
"""

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro.network import (
    DEFAULT_ROUTING,
    ROUTING_BACKENDS,
    ROUTING_ENV,
    AdaptiveRouting,
    MemoryNetwork,
    ResilientRoutingTable,
    RoutingTable,
    Topology,
    build_chain,
    build_dragonfly,
    build_mesh,
    make_routing,
    resolve_routing,
    routing_env,
)
from repro.network.routing import NO_ROUTE
from repro.sim import Simulator

TOPO = build_dragonfly()
TABLE = RoutingTable(TOPO)
NODES = sorted(TOPO.graph.nodes)


def test_path_endpoints_and_adjacency():
    for src in NODES[:6]:
        for dst in NODES[-6:]:
            path = TABLE.path(src, dst)
            assert path[0] == src and path[-1] == dst
            for a, b in zip(path, path[1:]):
                assert TOPO.graph.has_edge(a, b)


def test_paths_are_shortest():
    for src in (0, 5, 16):
        for dst in (3, 10, 19):
            expected = nx.shortest_path_length(TOPO.graph, src, dst)
            assert TABLE.distance(src, dst) == expected


def test_path_to_self():
    assert TABLE.path(7, 7) == [7]
    assert TABLE.next_hop(7, 7) == 7
    assert TABLE.distance(7, 7) == 0


def test_determinism_across_instances():
    other = RoutingTable(build_dragonfly())
    for src in NODES:
        for dst in NODES:
            assert TABLE.path(src, dst) == other.path(src, dst)


def test_split_point_properties_mesh():
    mesh = build_mesh()
    table = RoutingTable(mesh)
    root = mesh.controller_attach[mesh.controller_nodes[0]]
    for a in range(0, 16, 3):
        for b in range(1, 16, 5):
            split = table.split_point(root, a, b)
            # The split point lies on both routes.
            assert split in table.path(root, a)
            assert split in table.path(root, b)
            # Splitting at the root is always legal; any other node must be a
            # common prefix node of both deterministic paths.
            path_a, path_b = table.path(root, a), table.path(root, b)
            prefix_len = len(path_a[:path_a.index(split) + 1])
            assert path_a[:prefix_len] == path_b[:prefix_len]


def test_split_point_same_destination():
    assert TABLE.split_point(16, 9, 9) == 9


def test_nearest():
    assert TABLE.nearest(0, [0, 5, 9]) == 0
    with pytest.raises(ValueError):
        TABLE.nearest(0, [])


@given(st.sampled_from(NODES), st.sampled_from(NODES))
def test_distance_symmetric_in_hops(src, dst):
    # Paths may differ by direction, but minimal hop counts must agree.
    assert TABLE.distance(src, dst) == TABLE.distance(dst, src)


@given(st.sampled_from(NODES), st.sampled_from(NODES), st.sampled_from(NODES))
def test_split_point_is_on_both_paths(root, a, b):
    split = TABLE.split_point(root, a, b)
    assert split in TABLE.path(root, a)
    assert split in TABLE.path(root, b)


def _bfs_reference_paths(topo):
    """Independent deterministic-BFS path reconstruction (the construction the
    dense tables must reproduce exactly): ascending-neighbour BFS per root."""
    from collections import deque

    paths = {}
    for root in sorted(topo.graph.nodes):
        parent = {root: root}
        queue = deque([root])
        while queue:
            current = queue.popleft()
            for neighbor in sorted(topo.graph.neighbors(current)):
                if neighbor not in parent:
                    parent[neighbor] = current
                    queue.append(neighbor)
        for dst in parent:
            node, reverse = dst, [dst]
            while node != root:
                node = parent[node]
                reverse.append(node)
            paths[(root, dst)] = list(reversed(reverse))
    return paths


@pytest.mark.parametrize("build", [build_dragonfly, build_mesh])
def test_dense_tables_match_bfs_construction(build):
    topo = build()
    table = RoutingTable(topo)
    reference = _bfs_reference_paths(topo)
    for (src, dst), expected_path in reference.items():
        assert table.path(src, dst) == expected_path
        assert table.distance(src, dst) == len(expected_path) - 1
        expected_hop = expected_path[1] if len(expected_path) > 1 else src
        assert table.next_hop(src, dst) == expected_hop
        assert table.next_hop_table[src][dst] == expected_hop


def test_next_hop_unknown_destination_raises():
    with pytest.raises(ValueError):
        TABLE.next_hop(0, 10_000)
    with pytest.raises(ValueError):
        TABLE.distance(0, 10_000)


def test_nearest_unreachable_candidate_raises():
    disconnected = nx.Graph()
    disconnected.add_nodes_from([0, 1, 2, 3])
    disconnected.add_edge(0, 1)
    disconnected.add_edge(2, 3)
    topo = Topology(name="split", num_cubes=4, graph=disconnected)
    table = RoutingTable(topo)
    assert table.nearest(0, [0, 1]) == 0
    with pytest.raises(ValueError):
        table.nearest(0, [2])        # unreachable must not win the comparison
    with pytest.raises(ValueError):
        table.nearest(0, [1, 2])


def test_negative_node_ids_rejected():
    # Python's negative indexing must not leak wrong routes (NO_ROUTE is -1).
    with pytest.raises(ValueError):
        TABLE.next_hop(0, -1)
    with pytest.raises(ValueError):
        TABLE.distance(-1, 0)


# -- pinned tie-breaking contracts --------------------------------------------
def test_nearest_tie_break_is_ascending_id():
    """Equal distances break by ascending candidate id, order-independently."""
    mesh = build_mesh(rows=2, cols=2, num_controllers=1)
    table = RoutingTable(mesh)
    # Cubes 1 and 2 are both one hop from cube 0.
    assert table.distance(0, 1) == table.distance(0, 2)
    assert table.nearest(0, [2, 1]) == 1
    assert table.nearest(0, [1, 2]) == 1
    # Same contract on the paper topology, across every distance class.
    by_distance = {}
    for node in NODES:
        by_distance.setdefault(TABLE.distance(0, node), []).append(node)
    tied_groups = [group for group in by_distance.values() if len(group) > 1]
    assert tied_groups  # dragonfly has equidistant nodes; the test is not vacuous
    for group in tied_groups:
        assert TABLE.nearest(0, group) == min(group)
        assert TABLE.nearest(0, list(reversed(group))) == min(group)


def test_split_point_symmetric_and_prefix_pinned():
    """split_point is the last common *prefix* node and is symmetric in a, b."""
    mesh = build_mesh()
    table = RoutingTable(mesh)
    root = mesh.controller_attach[mesh.controller_nodes[0]]
    for a in range(16):
        for b in range(16):
            split = table.split_point(root, a, b)
            assert split == table.split_point(root, b, a)
            path_a, path_b = table.path(root, a), table.path(root, b)
            expected = root
            for x, y in zip(path_a, path_b):
                if x != y:
                    break
                expected = x
            assert split == expected
    # Memoized answers must be the same values on a repeat call.
    assert table.split_point(root, 5, 10) == table.split_point(root, 5, 10)


# -- routing-policy registry --------------------------------------------------
def test_registry_contract_flags():
    assert set(ROUTING_BACKENDS) == {"static", "resilient", "adaptive"}
    for name, cls in ROUTING_BACKENDS.items():
        assert cls.name == name
    assert ROUTING_BACKENDS["static"].supports_faults is False
    assert ROUTING_BACKENDS["resilient"].supports_faults is True
    assert ROUTING_BACKENDS["adaptive"].supports_faults is True
    assert ROUTING_BACKENDS["static"].uses_dense_next_hop is True
    assert ROUTING_BACKENDS["resilient"].uses_dense_next_hop is True
    assert ROUTING_BACKENDS["adaptive"].uses_dense_next_hop is False
    assert DEFAULT_ROUTING == "static"


def test_resolve_routing_precedence(monkeypatch):
    monkeypatch.delenv(ROUTING_ENV, raising=False)
    assert resolve_routing() == DEFAULT_ROUTING
    monkeypatch.setenv(ROUTING_ENV, "resilient")
    assert resolve_routing() == "resilient"          # env beats default
    assert resolve_routing("adaptive") == "adaptive"  # explicit beats env
    monkeypatch.setenv(ROUTING_ENV, "")
    assert resolve_routing() == DEFAULT_ROUTING       # empty env -> default
    assert resolve_routing("  Resilient ") == "resilient"  # normalized
    with pytest.raises(ValueError):
        resolve_routing("wormhole")


def test_routing_env_round_trip(monkeypatch):
    monkeypatch.delenv(ROUTING_ENV, raising=False)
    import os
    with routing_env("resilient"):
        assert os.environ[ROUTING_ENV] == "resilient"
        with routing_env(None):  # None leaves the environment untouched
            assert os.environ[ROUTING_ENV] == "resilient"
    assert ROUTING_ENV not in os.environ
    monkeypatch.setenv(ROUTING_ENV, "adaptive")
    with routing_env("static"):
        assert os.environ[ROUTING_ENV] == "static"
    assert os.environ[ROUTING_ENV] == "adaptive"  # previous value restored


def test_make_routing_instantiates_registered_class(monkeypatch):
    topo = build_mesh(rows=2, cols=2, num_controllers=1)
    monkeypatch.delenv(ROUTING_ENV, raising=False)
    assert type(make_routing(topo)) is RoutingTable
    assert type(make_routing(topo, "resilient")) is ResilientRoutingTable
    monkeypatch.setenv(ROUTING_ENV, "adaptive")
    assert type(make_routing(topo)) is AdaptiveRouting


# -- resilient policy: the pristine/live split --------------------------------
def test_resilient_matches_static_before_any_failure():
    topo = build_mesh()
    static, resilient = RoutingTable(topo), ResilientRoutingTable(topo)
    assert resilient.next_hop_table == static.next_hop_table
    # Until the first state change, live IS pristine (same objects), so the
    # network's hot loop reads failure-free data with zero indirection.
    assert resilient.live_next_hop_table is resilient.next_hop_table
    assert resilient._live_dist is resilient._dist


def test_resilient_pristine_columns_survive_a_failure():
    topo = build_mesh()
    table = ResilientRoutingTable(topo)
    reference = RoutingTable(topo)
    pinned = table.next_hop(0, 15)
    pristine_snapshot = [list(row) for row in table.next_hop_table]
    table.on_link_state_change(0, pinned, False)
    # Pristine columns frozen: tables, distances, paths, split points all
    # still describe the failure-free tree.
    assert table.next_hop_table == pristine_snapshot
    for dst in range(16):
        assert table.distance(0, dst) == reference.distance(0, dst)
        assert table.path(0, dst) == reference.path(0, dst)
    assert table.split_point(0, 5, 15) == reference.split_point(0, 5, 15)
    # The live view diverged into its own storage and avoids the dead link.
    assert table.live_next_hop_table is not table.next_hop_table
    walk, node = [], 0
    while node != 15:
        node = table.live_next_hop_table[node][15]
        walk.append(node)
    assert walk[0] != pinned
    assert len(walk) == reference.distance(0, 15)  # reroute is still minimal


def test_resilient_recovery_restores_live_routes():
    topo = build_mesh()
    table = ResilientRoutingTable(topo)
    pinned = table.next_hop(0, 15)
    table.on_link_state_change(0, pinned, False)
    table.on_link_state_change(0, pinned, True)
    # Recovery recomputes the same deterministic BFS over the full topology:
    # live contents equal pristine again (in now-separate storage).
    assert table.live_next_hop_table == table.next_hop_table
    assert [list(c) for c in table._live_dist] == [list(c) for c in table._dist]


def test_resilient_unreachable_pins_no_route():
    topo = build_chain(num_cubes=4, num_controllers=1)
    table = ResilientRoutingTable(topo)
    table.on_link_state_change(1, 2, False)  # splits the chain in half
    assert table.live_next_hop_table[0][3] == NO_ROUTE
    assert table._live_dist[0][3] == 0xFFFF
    # The pristine view never lies about the failure-free tree.
    assert table.next_hop(0, 3) == 1
    assert table.distance(0, 3) == 3


# -- adaptive policy ----------------------------------------------------------
def _adaptive_network(rows=2, cols=2):
    sim = Simulator()
    topo = build_mesh(rows=rows, cols=cols, num_controllers=1)
    net = MemoryNetwork(sim, topo, routing="adaptive")
    return sim, net, net.routing


def test_adaptive_unbound_falls_back_to_live_table():
    topo = build_mesh(rows=2, cols=2, num_controllers=1)
    policy = AdaptiveRouting(topo)  # never bound to a network
    assert policy.route(0, 3) == policy.live_next_hop_table[0][3]
    assert policy.route(2, 2) == 2


def test_adaptive_prefers_least_backlog_ascending_ties():
    sim, net, policy = _adaptive_network()
    # Cubes 1 and 2 both make shortest-path progress from 0 toward 3; with
    # equal (zero) backlog the ascending-id tie-break picks 1.
    assert policy.route(0, 3) == 1
    # Load the 0->1 link: the less-backlogged neighbour 2 must win.
    net.links[(0, 1)].busy_until = sim.now + 100.0
    assert policy.route(0, 3) == 2
    # Equal *non-zero* backlogs tie-break by ascending id again.
    net.links[(0, 2)].busy_until = sim.now + 100.0
    assert policy.route(0, 3) == 1


def test_adaptive_hops_always_make_shortest_path_progress():
    sim, net, policy = _adaptive_network(rows=4, cols=4)
    nodes = sorted(net.topology.graph.nodes)
    for src in nodes:
        for dst in nodes:
            if src == dst:
                continue
            hop = policy.route(src, dst)
            assert policy._live_dist[hop][dst] == policy._live_dist[src][dst] - 1


def test_adaptive_reroutes_around_a_dead_link():
    sim, net, policy = _adaptive_network()
    net.set_link_state(0, 1, False)
    assert policy.route(0, 3) == 2  # the only live shortest-path neighbour
    net.set_link_state(0, 2, False)
    with pytest.raises(ValueError):
        policy.route(0, 3)  # cut off: fails loudly, no stale route
