"""The declarative experiment-axis layer (repro.core.spec).

Three contracts are pinned here:

* **Byte-identity** — every label and cache key the pre-spec code produced is
  reproduced byte-for-byte by the axis folds, against a corpus frozen from
  the pre-refactor implementation (``tests/data/spec_corpus.json``).
* **Wire format** — ``from_json(to_json(spec)) == spec`` exactly, for every
  representable spec (Hypothesis).
* **No aliasing** — distinct cache-participating axis choices always occupy
  distinct cache entries, while the scheduler/execution axes (bit-identical
  results) deliberately contribute nothing.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import (AXES, ExperimentSpec, axes_for,
                             fold_execution_label, fold_network_label,
                             render_axes_table)
from repro.experiments.run_cache import RunCache, code_digest
from repro.experiments.suite import EvaluationSuite
from repro.hmc.config import HMCNetworkConfig, default_network
from repro.sim import DEFAULT_SUMMARY, resolve_summary, summary_env
from repro.sim.event_queue import DEFAULT_SCHEDULER
from repro.system.config import SystemConfig, SystemKind, make_system_config
from repro.workloads import TrafficSpec

CORPUS = Path(__file__).parent / "data" / "spec_corpus.json"


# ------------------------------------------------------------ frozen corpus
def _build_config(inputs):
    """Rebuild the corpus entry's SystemConfig the way the generator did."""
    if "net" in inputs:
        # Off-axis deviation entry: a link latency change must fall through
        # to the digest suffix, which only the config itself can compute.
        link = default_network().link
        net_kwargs = dict(inputs["net"])
        latency = net_kwargs.pop("link_latency_cycles", None)
        net = replace(default_network(), **net_kwargs,
                      link=replace(link, latency_cycles=latency)
                      if latency else link)
        return make_system_config(inputs["kind"]).with_network(net)
    return make_system_config(inputs["kind"], **inputs["config_kwargs"])


def test_frozen_corpus_labels_and_cache_keys_byte_identical():
    """Every pre-refactor label and cache key reproduces byte-for-byte."""
    corpus = json.loads(CORPUS.read_text())
    assert len(corpus) >= 25
    for entry in corpus:
        inputs = entry["inputs"]
        config = _build_config(inputs)
        assert config.label == entry["config_label"], entry["name"]
        if "net" in inputs:
            assert config.hmc_net.label == entry["network_label"], entry["name"]
            continue
        net_label = config.hmc_net.label if config.kind.uses_hmc else None
        assert net_label == entry["network_label"], entry["name"]
        params = dict(inputs["params"])
        if inputs["traffic"] is not None:
            params.update(TrafficSpec(**inputs["traffic"]).params())
        with summary_env(inputs["summary"]):
            key = RunCache.make_key(scale=inputs["scale"],
                                    workload=inputs["workload"],
                                    params=params, config_label=config.label,
                                    profile="scaled",
                                    num_threads=inputs["num_threads"])
        key.pop("digest")
        assert key == entry["cache_key_sans_digest"], entry["name"]


def test_spec_driven_keys_match_env_driven_keys():
    """make_key(spec=...) and the legacy env path produce identical bytes."""
    corpus = json.loads(CORPUS.read_text())
    for entry in corpus:
        inputs = entry["inputs"]
        if "net" in inputs:
            continue
        config = _build_config(inputs)
        params = dict(inputs["params"])
        if inputs["traffic"] is not None:
            params.update(TrafficSpec(**inputs["traffic"]).params())
        spec = ExperimentSpec(summary=inputs["summary"])
        key = RunCache.make_key(scale=inputs["scale"],
                                workload=inputs["workload"], params=params,
                                config_label=config.label, profile="scaled",
                                num_threads=inputs["num_threads"], spec=spec)
        key.pop("digest")
        assert key == entry["cache_key_sans_digest"], entry["name"]


# ------------------------------------------------------------- fold rules
def test_network_fold_matches_config_label():
    net = HMCNetworkConfig()
    assert fold_network_label({
        "topology": net.topology, "num_cubes": net.num_cubes,
        "num_controllers": net.num_controllers, "routing": net.routing,
        "failure_rate": net.failure_rate, "failure_seed": net.failure_seed,
        "link_bandwidth": net.link.bandwidth_bytes_per_cycle,
    }) == "dragonfly16c4" == net.label


def test_execution_fold_elides_default_and_zero_shards():
    assert fold_execution_label({"execution": "serial", "shards": 0}) == ""
    assert fold_execution_label({"execution": "sharded", "shards": 0}) == "%sharded"
    assert fold_execution_label({"execution": "sharded", "shards": 3}) == "%sharded3"


def test_axis_defaults_match_authoritative_constructors():
    """The registry's default literals agree with the objects they describe."""
    net = HMCNetworkConfig()
    assert AXES["topology"].default == net.topology
    assert AXES["num_cubes"].default == net.num_cubes
    assert AXES["num_controllers"].default == net.num_controllers
    assert AXES["routing"].default == net.routing
    assert AXES["failure_rate"].default == net.failure_rate
    assert AXES["failure_seed"].default == net.failure_seed
    assert AXES["link_bandwidth"].default == net.link.bandwidth_bytes_per_cycle
    traffic = TrafficSpec()
    assert AXES["driver"].default == traffic.driver
    assert AXES["arrival_rate"].default == traffic.arrival_rate
    assert AXES["zipf_s"].default == traffic.zipf_s
    assert AXES["tenant_mix"].default == traffic.tenant_mix
    assert AXES["stream_requests"].default == traffic.stream_requests
    assert AXES["stream_keys"].default == traffic.stream_keys
    assert AXES["summary"].default == DEFAULT_SUMMARY
    assert AXES["scheduler"].default == DEFAULT_SCHEDULER
    system = SystemConfig(kind=SystemKind.HMC)
    assert AXES["execution"].default == system.execution
    assert AXES["shards"].default == system.shards


def test_every_axis_default_is_a_valid_choice():
    for axis in AXES.values():
        if axis.choices is not None:
            assert axis.default in axis.choices(), axis.name


# ---------------------------------------------------------------- wire format
def _axis_values(name):
    axis = AXES[name]
    if axis.choices is not None:
        return st.sampled_from(sorted(axis.choices()))
    if axis.type is int:
        return st.integers(min_value=0, max_value=10**9)
    if axis.type is float:
        return st.floats(min_value=0.0, max_value=1e12,
                         allow_nan=False, allow_infinity=False)
    return st.sampled_from(["", "mac", "mac,pagerank", "reduce,spmv,lud"])


SPECS = st.fixed_dictionaries(
    {}, optional={name: _axis_values(name) for name in AXES}
).map(lambda axes: ExperimentSpec(**axes))


@settings(max_examples=200, deadline=None)
@given(SPECS)
def test_json_round_trip_is_lossless(spec):
    assert ExperimentSpec.from_json(spec.to_json()) == spec


@settings(max_examples=50, deadline=None)
@given(SPECS)
def test_to_json_elides_unset_axes_only(spec):
    payload = json.loads(spec.to_json())
    assert payload["spec"] == 1
    assert set(payload["axes"]) == {name for name in AXES
                                   if getattr(spec, name) is not None}


def test_from_json_rejects_unknown_versions_and_axes():
    with pytest.raises(ValueError, match="unsupported"):
        ExperimentSpec.from_json('{"spec": 2, "axes": {}}')
    with pytest.raises(ValueError, match="unknown experiment axes"):
        ExperimentSpec.from_json('{"spec": 1, "axes": {"warp_speed": 9}}')
    with pytest.raises(ValueError, match="not a JSON"):
        ExperimentSpec.from_json("topology=mesh")


def test_resolution_precedence_explicit_env_default(monkeypatch):
    monkeypatch.delenv("REPRO_SUMMARY", raising=False)
    assert ExperimentSpec().resolved("summary") == "reservoir"
    monkeypatch.setenv("REPRO_SUMMARY", "sketch")
    assert ExperimentSpec().resolved("summary") == "sketch"
    assert ExperimentSpec(summary="reservoir").resolved("summary") == "reservoir"


# ----------------------------------------------------------------- no aliasing
def _cell_key(spec):
    """The cache key of one (mac, HMC) suite cell under ``spec``."""
    config = make_system_config("HMC", **spec.network_overrides())
    params = {"array_elements": 1024}
    params.update(spec.cache_params())
    return RunCache.make_key(scale="tiny", workload="mac", params=params,
                             config_label=config.label, profile="scaled",
                             num_threads=4, spec=spec)


def test_distinct_cache_participating_specs_never_alias():
    variants = [
        ExperimentSpec(),
        ExperimentSpec(topology="mesh"),
        ExperimentSpec(topology="torus"),
        ExperimentSpec(num_controllers=2),
        ExperimentSpec(link_bandwidth=25.0),
        ExperimentSpec(routing="resilient"),
        ExperimentSpec(routing="resilient", failure_rate=10.0),
        ExperimentSpec(routing="resilient", failure_rate=10.0, failure_seed=7),
        ExperimentSpec(driver="open"),
        ExperimentSpec(driver="open", arrival_rate=2.0),
        ExperimentSpec(driver="open", zipf_s=0.5),
        ExperimentSpec(driver="open", tenant_mix="mac,pagerank"),
        ExperimentSpec(driver="open", stream_requests=64),
        ExperimentSpec(summary="sketch"),
    ]
    keys = [json.dumps(_cell_key(spec), sort_keys=True) for spec in variants]
    assert len(set(keys)) == len(keys)


def test_scheduler_and_execution_axes_do_not_touch_suite_keys():
    """Bit-identical-result axes must share cache entries by design."""
    base = _cell_key(ExperimentSpec())
    assert _cell_key(ExperimentSpec(scheduler="calendar")) == base
    assert _cell_key(ExperimentSpec(execution="sharded", shards=3)) == base


# ----------------------------------------------------- warm-cache invariant
def _frozen_pre_refactor_key(*, scale, workload, params, config_label,
                             profile, num_threads):
    """The cache-key construction vendored verbatim from the pre-spec code.

    ``code_digest()`` is evaluated at runtime on both sides, so it cancels:
    what this pins is the *layout* — field names, order-insensitive content,
    summary-only-when-non-default.
    """
    key = {
        "digest": code_digest(),
        "scale": scale,
        "workload": workload,
        "params": {name: params[name] for name in sorted(params)},
        "config": config_label,
        "profile": profile,
        "num_threads": num_threads,
    }
    summary = resolve_summary()
    if summary != DEFAULT_SUMMARY:
        key["summary"] = summary
    return key


def test_warm_pre_refactor_cache_serves_post_refactor_suite(tmp_path):
    """A cache written at pre-refactor key paths satisfies a post-refactor
    suite with zero simulations (the refactor's byte-identity acceptance)."""
    kinds = [SystemKind.HMC, SystemKind.ART]
    cold = EvaluationSuite("tiny", workloads=["mac"], kinds=kinds,
                           cache_dir=tmp_path)
    for kind in kinds:
        cold.result("mac", kind)
    assert cold.simulations_run == len(kinds)
    # Every entry the cold suite just wrote sits at the exact path the
    # pre-refactor key logic would have chosen.
    for kind in kinds:
        label = cold.config_for(kind).label
        params = cold._params_for("mac")
        frozen = _frozen_pre_refactor_key(
            scale="tiny", workload="mac", params=params, config_label=label,
            profile="scaled", num_threads=cold.scale.num_threads)
        assert frozen == cold._cache_key("mac", label, params)
        assert cold.cache.path_for(frozen).exists()
    warm = EvaluationSuite("tiny", workloads=["mac"], kinds=kinds,
                           cache_dir=tmp_path)
    for kind in kinds:
        warm.result("mac", kind)
    assert warm.simulations_run == 0
    assert warm.disk_hits == len(kinds)


# ------------------------------------------------------------------ registry
def test_axes_table_lists_every_axis():
    table = render_axes_table()
    for name, axis in AXES.items():
        assert f"`{name}`" in table
        assert f"`{axis.flag}`" in table


def test_group_slices_cover_the_registry():
    groups = ("network", "traffic", "summary", "scheduler", "execution")
    names = [name for group in groups for name in axes_for(group)]
    assert sorted(names) == sorted(AXES)
    assert list(axes_for("network")) == ["topology", "num_cubes",
                                         "num_controllers", "routing",
                                         "failure_rate", "failure_seed",
                                         "link_bandwidth"]
