"""Integration tests of the per-figure experiment harness at tiny scale."""

import pytest

from repro.experiments import (
    SCALES,
    EvaluationSuite,
    fig_data_movement,
    fig_dynamic_offload,
    fig_latency,
    fig_lud_heatmap,
    fig_power_energy,
    fig_speedup,
    render_table_3_1,
    render_table_4_1,
    scale_from_env,
    table_3_1,
)
from repro.system import SystemKind


@pytest.fixture(scope="module")
def suite():
    """One shared tiny-scale suite; figures reuse its cached runs."""
    s = EvaluationSuite("tiny", workloads=["mac", "rand_mac", "lud", "pagerank"])
    return s


def test_scales_registry(monkeypatch):
    assert set(SCALES) == {"tiny", "small", "default"}
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    assert scale_from_env().name == "tiny"
    monkeypatch.setenv("REPRO_SCALE", "bogus")
    with pytest.raises(ValueError):
        scale_from_env()


def test_tables_render():
    rows = dict(table_3_1())
    assert "flow_id" in rows and "Gather" in rows["gflag"]
    assert "Flow Table" in render_table_3_1()
    assert "dragonfly" in render_table_4_1()


def test_suite_caches_results(suite):
    first = suite.result("mac", "ARF-tid")
    second = suite.result("mac", SystemKind.ARF_TID)
    assert first is second
    assert suite.speedup("mac", "ARF-tid") > 0
    assert suite.verified()


def test_fig_5_1_speedup_structure(suite):
    data = fig_speedup.compute(suite)
    panels = data["panels"]
    assert "mac" in panels["microbenchmarks"]
    assert "lud" in panels["benchmarks"]
    row = panels["microbenchmarks"]["mac"]
    assert row["DRAM"] == pytest.approx(1.0)
    assert set(row) == {"DRAM", "HMC", "ART", "ARF-tid", "ARF-addr"}
    assert "ARF-tid" in data["improvement_over_hmc"]
    text = fig_speedup.render(data)
    assert "Figure 5.1" in text and "gmean" in text


def test_fig_5_2_latency_structure(suite):
    data = fig_latency.compute(suite)
    row = data["microbenchmarks"]["mac"]
    assert row["ARF-tid.request"] >= 0
    assert row["ARF-tid.total"] >= row["ARF-tid.request"]
    assert "Figure 5.2" in fig_latency.render(data)


def test_fig_5_3_heatmap_structure(suite):
    data = fig_lud_heatmap.compute(suite)
    assert set(data) == {"ARF-tid", "ARF-addr"}
    per_cube = data["ARF-tid"]["updates_received"]
    assert len(per_cube) == 16
    assert sum(per_cube.values()) > 0
    assert data["ARF-tid"]["summary"]["updates_received"]["imbalance"] >= 1.0
    assert "Figure 5.3" in fig_lud_heatmap.render(data)


def test_fig_5_4_data_movement_structure(suite):
    data = fig_data_movement.compute(suite)
    row = data["microbenchmarks"]["mac"]
    assert row["HMC.total"] == pytest.approx(1.0)
    assert row["ARF-tid.active_req"] > 0
    assert row["HMC.active_req"] == 0.0
    assert "Figure 5.4" in fig_data_movement.render(data)


def test_fig_5_5_to_5_7_power_energy_edp(suite):
    power = fig_power_energy.compute_power(suite)
    energy = fig_power_energy.compute_energy(suite)
    edp = fig_power_energy.compute_edp(suite)
    for data in (power, energy):
        row = data["microbenchmarks"]["mac"]
        assert row["DRAM.total"] == pytest.approx(1.0)
        assert row["ARF-tid.network"] >= 0.0
    edp_row = edp["panels"]["microbenchmarks"]["mac"]
    assert edp_row["DRAM"] == pytest.approx(1.0)
    assert "ARF-tid" in edp["edp_reduction_vs_hmc"]
    assert "Figure 5.5" in fig_power_energy.render_power(power)
    assert "Figure 5.6" in fig_power_energy.render_energy(energy)
    assert "Figure 5.7" in fig_power_energy.render_edp(edp)


def test_fig_5_8_dynamic_offload(suite):
    data = fig_dynamic_offload.compute(suite)
    assert set(data["runs"]) == {"HMC", "ARF-tid", "ARF-tid-adaptive"}
    assert data["speedups"]["HMC"] == pytest.approx(1.0)
    # The adaptive scheme never does worse than always-offloading at tiny scale,
    # because it keeps cache-friendly phases on the host.
    assert data["speedups"]["ARF-tid-adaptive"] >= data["speedups"]["ARF-tid"] * 0.9
    assert data["threshold"] > 0
    assert "Figure 5.8" in fig_dynamic_offload.render(data)


def test_topology_sweep_figure(suite):
    from repro.experiments import fig_topology

    data = fig_topology.compute(suite)
    assert data["networks"] == ["dragonfly16c4", "mesh16c4", "torus16c4"]
    assert data["kinds"] == ["HMC", "ARF-tid"]
    assert data["workloads"] == ["mac", "pagerank"]
    for net in data["networks"]:
        for kind in data["kinds"]:
            assert data["speedup"][net][kind] > 0
            assert data["queue_delay"][net][kind] >= 0.0
    # The default-network column reuses the plain matrix runs: the dragonfly
    # cells must agree exactly with the headline speedup figure.
    assert data["per_workload"]["dragonfly16c4"]["ARF-tid"]["mac"] == \
        pytest.approx(suite.speedup("mac", "ARF-tid"))
    text = fig_topology.render(data)
    assert "Topology sweep" in text and "mesh16c4" in text


def test_topology_figure_prefetch_batches_variant_runs(tmp_path):
    from repro.experiments import fig_topology

    cold = EvaluationSuite("tiny", workloads=["mac"], workers=2,
                           cache_dir=tmp_path)
    stats = cold.prefetch(figures=["topology"])
    # 1 DRAM baseline pair + 3 networks x 2 schemes (the dragonfly cells are
    # the default network, so they double as plain matrix runs).
    assert stats == {"pairs": 7, "reused": 0, "disk_hits": 0, "simulated": 7}
    before = cold.simulations_run
    fig_topology.compute(cold)
    assert cold.simulations_run == before      # figure served from the batch

    warm = EvaluationSuite("tiny", workloads=["mac"], cache_dir=tmp_path)
    warm_stats = warm.prefetch(figures=["topology"])
    assert warm_stats["simulated"] == 0
    assert warm_stats["disk_hits"] == 7


def test_suite_with_network_variant_runs_every_figure(tmp_path):
    """A non-default suite parameterizes the whole figure family by network
    shape: same API, distinct labels and cache entries."""
    from repro.hmc import HMCNetworkConfig

    net = HMCNetworkConfig(topology="mesh", num_cubes=8)
    mesh_suite = EvaluationSuite("tiny", workloads=["mac"],
                                 kinds=[SystemKind.DRAM, SystemKind.HMC,
                                        SystemKind.ARF_TID],
                                 net=net, cache_dir=tmp_path)
    data = fig_speedup.compute(mesh_suite)
    row = data["panels"]["microbenchmarks"]["mac"]
    # Figure columns stay scheme-keyed (the network is suite-wide context)...
    assert set(row) == {"DRAM", "HMC", "ARF-tid"}
    assert row["DRAM"] == pytest.approx(1.0)
    # ...but the runs themselves carry the variant label, and the result
    # matrix + cache key on it.
    result = mesh_suite.result("mac", SystemKind.HMC)
    assert result.config == "HMC@mesh8c4"
    assert ("mac", "HMC@mesh8c4") in mesh_suite._results
    assert ("mac", "HMC") not in mesh_suite._results


def test_lud_heatmap_renders_at_the_suite_cube_count(tmp_path):
    from repro.experiments import fig_lud_heatmap
    from repro.hmc import HMCNetworkConfig

    suite = EvaluationSuite("tiny", workloads=["lud"],
                            net=HMCNetworkConfig(topology="mesh", num_cubes=8))
    text = fig_lud_heatmap.run(suite)
    assert "Figure 5.3" in text
    data = fig_lud_heatmap.compute(suite)
    # 8-cube network: per-cube counts stop at cube 7, no phantom cubes.
    assert set(data["ARF-tid"]["updates_received"]) == set(range(8))
    assert " c8" not in text and "c15" not in text


def test_dynamic_offload_respects_suite_network():
    from repro.experiments import fig_dynamic_offload
    from repro.hmc import HMCNetworkConfig

    suite = EvaluationSuite("tiny", net=HMCNetworkConfig(topology="mesh"))
    jobs = fig_dynamic_offload.bespoke_jobs(suite)
    # The bespoke LUD replays must run on the suite's network, with the
    # variant label keeping their cache entries apart from the default's.
    assert {config.label for _tag, config, _w, _p in jobs} == \
        {"HMC@mesh16c4", "ARF-tid@mesh16c4"}


def test_degraded_network_zero_rate_is_the_plain_topology_config():
    from repro.experiments import fig_degraded
    from repro.system.config import make_network_config

    # The failure-free anchor row IS the topology-sweep config (static
    # routing, same label), so the two figures share runs and cache entries.
    anchor = fig_degraded.degraded_network("mesh", 0.0)
    assert anchor == make_network_config(topology="mesh")
    assert anchor.routing == "static" and anchor.failure_rate == 0.0
    degraded = fig_degraded.degraded_network("mesh", 2.0)
    assert degraded.routing == "resilient"
    assert degraded.failure_rate == 2.0
    assert degraded.failure_seed == fig_degraded.DEGRADED_SEED
    assert degraded.label == "mesh16c4-resilient-f2s7"


def test_degraded_sweep_networks_dedup_and_order():
    from repro.experiments import fig_degraded

    cells = fig_degraded.sweep_networks(["mesh", "mesh"], [0.0, 2.0, 2.0])
    assert [(topology, rate) for topology, rate, _net in cells] == \
        [("mesh", 0.0), ("mesh", 2.0)]
    default = fig_degraded.sweep_networks()
    assert [(t, r) for t, r, _ in default] == \
        [(t, r) for t in fig_degraded.SWEEP_TOPOLOGIES
         for r in fig_degraded.SWEEP_FAILURE_RATES]


def test_degraded_figure_structure(suite):
    from repro.experiments import fig_degraded

    data = fig_degraded.compute(suite, topologies=["mesh"],
                                failure_rates=[0.0, 2.0],
                                kinds=[SystemKind.ARF_TID], workloads=["mac"])
    assert [row["label"] for row in data["rows"]] == \
        ["mesh16c4", "mesh16c4-resilient-f2s7"]
    # The failure-free anchor delivers everything; the degraded cell still
    # runs to completion (parked hops retransmit) but records interruptions.
    assert data["delivered"]["mesh16c4"]["ARF-tid"] == pytest.approx(1.0)
    assert 0.0 < data["delivered"]["mesh16c4-resilient-f2s7"]["ARF-tid"] <= 1.0
    for row in data["rows"]:
        assert data["speedup"][row["label"]]["ARF-tid"] > 0
    text = fig_degraded.render(data)
    assert "Degraded-mode sweep" in text
    assert "mesh16c4-resilient-f2s7" not in text  # tables key topology + rate
    assert "Delivered-traffic fraction" in text
