"""Packet arena (per-class free-list pool) lifecycle invariants.

The pool must be invisible to simulation semantics: identical results with
recycling on or off, exact reuse of released instances, and loud failures —
under ``REPRO_PACKET_POOL=debug`` — for use-after-release and double release.
The steady-state test pins the headline property of the arena: a warmed-up
run constructs zero new packet objects, so the event hot loop is
allocation-free as far as packets are concerned.
"""

import gc
import tracemalloc

import pytest

from repro.network import packet as packet_mod
from repro.network.packet import (
    MemReadPacket,
    configure_pool,
    pool_debug,
    pool_enabled,
    pool_stats,
    release,
    reset_pools,
)
from repro.system import run_workload


@pytest.fixture
def pool():
    """Restore the ambient pool configuration and drain the free lists."""
    enabled, debug = pool_enabled(), pool_debug()
    reset_pools()
    yield
    configure_pool(enabled=enabled, debug=debug)
    reset_pools()


def _tiny_run():
    return run_workload("ARF-tid", "mac", num_threads=2, array_elements=256)


def test_release_then_reacquire_returns_the_same_instance(pool):
    configure_pool(enabled=True, debug=False)
    first = MemReadPacket.acquire(src=0, dst=1, addr=64)
    first_id = first.pkt_id
    release(first)
    second = MemReadPacket.acquire(src=2, dst=3, addr=128)
    assert second is first                     # recycled, not reconstructed
    assert second.src == 2 and second.dst == 3 and second.addr == 128
    assert second.pkt_id != first_id           # reset() re-stamps identity
    stats = pool_stats()["MemReadPacket"]
    assert stats == {"fresh": 1, "reused": 1, "released": 1, "free": 0}


def test_debug_poison_makes_use_after_release_raise(pool):
    configure_pool(enabled=True, debug=True)
    packet = MemReadPacket.acquire(src=0, dst=1, addr=64)
    release(packet)
    with pytest.raises(TypeError):
        packet.size + 1                        # poisoned field: no arithmetic
    assert "released" in repr(packet)


def test_debug_detects_double_release(pool):
    configure_pool(enabled=True, debug=True)
    packet = MemReadPacket.acquire(src=0, dst=1, addr=64)
    release(packet)
    with pytest.raises(RuntimeError, match="double release"):
        release(packet)


def test_pool_disabled_runs_are_bit_identical(pool):
    """``REPRO_PACKET_POOL=0`` is an escape hatch, not a different simulator:
    cycles, event counts and results must match the pooled run exactly."""
    configure_pool(enabled=True, debug=False)
    pooled = _tiny_run()
    configure_pool(enabled=False)
    reset_pools()                              # drop the pooled run's counters
    unpooled = _tiny_run()
    assert pooled.cycles == unpooled.cycles
    assert pooled.events_executed == unpooled.events_executed
    assert pooled.data_movement == unpooled.data_movement
    assert pooled.flow_checks == unpooled.flow_checks
    # Disabled mode really does construct every packet afresh.
    assert sum(s["reused"] for s in pool_stats().values()) == 0


def test_steady_state_run_allocates_no_new_packets(pool):
    """After a warm-up run has filled the free lists to the workload's
    high-water mark, a repeat run must construct zero new packet objects, and
    the net-new tracemalloc blocks attributed to ``packet.py`` must scale with
    the free-list population (retained ``pkt_id`` ints), not with the number
    of events executed — i.e. the hot loop does not allocate per event."""
    configure_pool(enabled=True, debug=False)
    _tiny_run()                                # warm-up fills the free lists

    def snapshot():
        # Collect first: each run's dead simulation graph is cyclic garbage,
        # and whether the collector has run before the snapshot is timing
        # noise this test must not depend on.
        gc.collect()
        return tracemalloc.take_snapshot()

    fresh_before = sum(s["fresh"] for s in pool_stats().values())
    tracemalloc.start()
    first = snapshot()
    result = _tiny_run()
    second = snapshot()
    _tiny_run()
    third = snapshot()
    tracemalloc.stop()
    fresh_after = sum(s["fresh"] for s in pool_stats().values())
    assert fresh_after == fresh_before         # zero new packet constructions
    assert result.events_executed > 1000       # the runs actually did work

    def new_blocks(newer, older):
        filters = [tracemalloc.Filter(True, packet_mod.__file__)]
        diff = newer.filter_traces(filters).compare_to(
            older.filter_traces(filters), "lineno")
        return sum(d.count_diff for d in diff if d.count_diff > 0)

    # The first traced run may pin one block per free-listed packet (the
    # retained pkt_id ints were allocated before tracing started, so their
    # replacements register as new); that is a one-time population effect.
    retained = sum(s["free"] for s in pool_stats().values())
    assert new_blocks(second, first) <= retained + 64
    # Once every retained block is traced, a further run must net out to
    # (almost) nothing: the hot loop does not allocate per event.
    assert new_blocks(third, second) <= 64
