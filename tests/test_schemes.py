"""Unit tests for Active-Routing tree-construction schemes and the offload policy."""

import pytest

from repro.core import DynamicOffloadPolicy, PortSelector, Scheme
from repro.hmc import HMCMemorySystem
from repro.isa import UpdateOp
from repro.sim import Simulator


@pytest.fixture
def hmc():
    return HMCMemorySystem(Simulator())


def test_scheme_parsing():
    assert Scheme.from_name("ART") is Scheme.ART
    assert Scheme.from_name("arf-tid") is Scheme.ARF_TID
    assert Scheme.from_name("ARF_ADDR") is Scheme.ARF_ADDR
    with pytest.raises(ValueError):
        Scheme.from_name("random")


def test_art_always_static_port(hmc):
    selector = PortSelector(Scheme.ART, hmc, static_port=2)
    for tid in range(8):
        op = UpdateOp("add", tid * 4096, None, 0x10)
        assert selector.select(tid, op) == 2


def test_arf_tid_interleaves_by_thread(hmc):
    selector = PortSelector(Scheme.ARF_TID, hmc)
    op = UpdateOp("add", 0x1000, None, 0x10)
    ports = [selector.select(tid, op) for tid in range(8)]
    assert ports == [0, 1, 2, 3, 0, 1, 2, 3]


def test_arf_addr_selects_nearest_port(hmc):
    selector = PortSelector(Scheme.ARF_ADDR, hmc)
    routing = hmc.network.routing
    for page in range(0, 64, 7):
        addr = page * 4096
        op = UpdateOp("add", addr, None, 0x10)
        port = selector.select(99, op)   # thread id must not matter
        cube = hmc.mapping.cube_of(addr)
        chosen = hmc.controller_for_port(port)
        best = min(hmc.controllers,
                   key=lambda c: (routing.distance(c.attached_cube, cube), c.port_id))
        assert routing.distance(chosen.attached_cube, cube) == \
            routing.distance(best.attached_cube, cube)


def test_arf_addr_falls_back_to_target_without_operands(hmc):
    selector = PortSelector(Scheme.ARF_ADDR, hmc)
    op = UpdateOp("const_assign", None, None, 0x12345000, imm=1.0)
    port = selector.select(0, op)
    assert 0 <= port < 4


def test_offload_policy_threshold():
    policy = DynamicOffloadPolicy(cache_block_size=64)
    # Unit-stride over both streams: threshold = 64/8 + 64/8 = 16.
    assert policy.updates_threshold(8, 8) == pytest.approx(16.0)
    assert not policy.should_offload(10, 8, 8)
    assert policy.should_offload(20, 8, 8)
    # A large second stride lowers the threshold.
    assert policy.updates_threshold(8, 64 * 8) == pytest.approx(8.125)
    with pytest.raises(ValueError):
        policy.updates_threshold(0)


def test_offload_policy_working_set_criterion():
    policy = DynamicOffloadPolicy(cache_capacity_bytes=1024)
    assert not policy.should_offload(100, 8, 8, working_set_bytes=512)
    assert policy.should_offload(100, 8, 8, working_set_bytes=4096)
