"""Unit tests for the trace-driven core, Message Interface and barriers."""

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.core import Core
from repro.cpu.message_interface import MessageInterface
from repro.cpu.sync import BarrierManager
from repro.isa import (
    AtomicOp,
    BarrierOp,
    ComputeOp,
    GatherOp,
    LoadOp,
    PhaseMarkerOp,
    StoreOp,
    UpdateOp,
)
from repro.sim import Simulator


class FakeHierarchy:
    """Configurable fake cache hierarchy for core unit tests."""

    def __init__(self, sim, hit_latency=2.0, miss_latency=200.0, always_miss=False):
        self.sim = sim
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        self.always_miss = always_miss
        self.seen_blocks = set()
        self.accesses = 0
        self.atomics = 0

    def access(self, core_id, addr, is_write, on_complete=None):
        self.accesses += 1
        block = addr // 64
        if not self.always_miss and block in self.seen_blocks:
            return self.hit_latency
        self.seen_blocks.add(block)
        self.sim.schedule(self.miss_latency, lambda: on_complete(self.miss_latency))
        return None

    def atomic_access(self, core_id, addr, on_complete, occupancy=16.0):
        self.atomics += 1
        self.sim.schedule(50.0, lambda: on_complete(50.0))


class FakeBackend:
    """Offload backend that commits updates and answers gathers after a delay."""

    def __init__(self, sim, commit_delay=30.0, gather_delay=100.0):
        self.sim = sim
        self.commit_delay = commit_delay
        self.gather_delay = gather_delay
        self.updates = []
        self.gathers = []

    def offload_update(self, core_id, op, on_commit):
        self.updates.append(op)
        self.sim.schedule(self.commit_delay, on_commit)

    def offload_gather(self, core_id, op, on_result):
        self.gathers.append(op)
        self.sim.schedule(self.gather_delay, lambda: on_result(42.0))


def _make_core(sim, trace, backend=None, config=None, hierarchy=None):
    config = config or CoreConfig()
    hierarchy = hierarchy or FakeHierarchy(sim)
    mi = MessageInterface(sim, 0, backend, max_outstanding_updates=config.max_outstanding_updates)
    barriers = BarrierManager(sim)
    core = Core(sim, 0, config, hierarchy, mi, barriers)
    core.load_trace(trace)
    return core, hierarchy, mi, barriers


def test_compute_only_trace_timing():
    sim = Simulator()
    core, *_ = _make_core(sim, [ComputeOp(80, instructions=80)])
    core.start()
    sim.run_until_idle()
    assert core.done
    assert core.instructions == 80
    assert core.finish_time == pytest.approx(80 / core.config.issue_width, rel=0.2)


def test_memory_window_limits_outstanding_misses():
    sim = Simulator()
    config = CoreConfig(max_outstanding_mem=2)
    hierarchy = FakeHierarchy(sim, always_miss=True, miss_latency=100.0)
    trace = [LoadOp(i * 64) for i in range(8)]
    core, hierarchy, *_ = _make_core(sim, trace, config=config, hierarchy=hierarchy)
    core.start()
    sim.run_until_idle()
    assert core.done
    # 8 misses, 2 at a time, 100 cycles each -> at least 4 serial batches.
    assert core.finish_time >= 400
    assert core.stall_breakdown().get("mem_window", 0) > 0


def test_hits_do_not_block():
    sim = Simulator()
    hierarchy = FakeHierarchy(sim)
    hierarchy.seen_blocks.add(0)
    trace = [LoadOp(0) for _ in range(100)]
    core, *_ = _make_core(sim, trace, hierarchy=hierarchy)
    core.start()
    sim.run_until_idle()
    assert core.done
    assert core.finish_time < 100


def test_update_offload_and_gather_block():
    sim = Simulator()
    backend = FakeBackend(sim)
    trace = [UpdateOp("add", 0x100, None, 0xdead) for _ in range(10)]
    trace.append(GatherOp(0xdead, 1))
    core, _h, mi, _b = _make_core(sim, trace, backend=backend)
    core.start()
    sim.run_until_idle()
    assert core.done
    assert len(backend.updates) == 10
    assert len(backend.gathers) == 1
    assert core.stall_breakdown().get("gather", 0) > 0
    assert mi.outstanding_updates == 0


def test_mi_window_backpressure():
    sim = Simulator()
    backend = FakeBackend(sim, commit_delay=500.0)
    config = CoreConfig(max_outstanding_updates=4)
    trace = [UpdateOp("add", i * 8, None, 0xbeef) for i in range(16)]
    core, _h, mi, _b = _make_core(sim, trace, backend=backend, config=config)
    core.start()
    sim.run_until_idle()
    assert core.done
    assert core.stall_breakdown().get("mi_window", 0) > 0
    # Four batches of four updates, each batch waiting ~500 cycles.
    assert core.finish_time >= 1500


def test_update_without_backend_raises():
    sim = Simulator()
    core, *_ = _make_core(sim, [UpdateOp("add", 0, None, 1)], backend=None)
    core.start()
    with pytest.raises(RuntimeError):
        sim.run_until_idle()


def test_atomic_blocks_and_completes():
    sim = Simulator()
    trace = [AtomicOp(0x40), ComputeOp(4)]
    core, hierarchy, *_ = _make_core(sim, trace)
    core.start()
    sim.run_until_idle()
    assert core.done
    assert hierarchy.atomics == 1
    assert core.stall_breakdown().get("atomic", 0) >= 50


def test_barrier_synchronizes_two_cores():
    sim = Simulator()
    barriers = BarrierManager(sim)
    cores = []
    for cid, compute in ((0, 10), (1, 500)):
        config = CoreConfig()
        hierarchy = FakeHierarchy(sim)
        mi = MessageInterface(sim, cid, None)
        core = Core(sim, cid, config, hierarchy, mi, barriers)
        core.load_trace([ComputeOp(compute), BarrierOp(1, 2), ComputeOp(8)])
        cores.append(core)
        core.start()
    sim.run_until_idle()
    assert all(c.done for c in cores)
    # The fast core waits for the slow one at the barrier.
    assert cores[0].finish_time >= 500 / cores[1].config.issue_width
    assert cores[0].stall_breakdown().get("barrier", 0) > 0


def test_phase_markers_and_ipc_samples():
    sim = Simulator()
    config = CoreConfig(ipc_sample_interval=10)
    trace = [PhaseMarkerOp("phase0")] + [ComputeOp(1)] * 50 + [PhaseMarkerOp("phase1")]
    core, *_ = _make_core(sim, trace, config=config)
    core.start()
    sim.run_until_idle()
    assert [label for label, _, _ in core.phase_log] == ["phase0", "phase1"]
    assert len(core.ipc_samples) >= 4
    assert core.ipc() > 0


def test_message_interface_errors():
    sim = Simulator()
    mi = MessageInterface(sim, 0, None)
    assert not mi.enabled
    with pytest.raises(RuntimeError):
        mi.offload_update(UpdateOp("add", 0, None, 1))
    backend = FakeBackend(sim)
    mi2 = MessageInterface(sim, 0, backend, max_outstanding_updates=1)
    mi2.offload_update(UpdateOp("add", 0, None, 1))
    with pytest.raises(RuntimeError):
        mi2.offload_update(UpdateOp("add", 8, None, 1))
