"""Unit tests for the simulator driver."""

import pytest

from repro.sim import SimulationError, Simulator


def test_schedule_and_run_advances_time():
    sim = Simulator()
    seen = []
    sim.schedule(10, lambda: seen.append(sim.now))
    sim.schedule(5, lambda: seen.append(sim.now))
    end = sim.run_until_idle()
    assert seen == [5, 10]
    assert end == 10
    assert sim.finished


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(5, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(1, lambda: None)


def test_run_until_bound():
    sim = Simulator()
    fired = []
    sim.schedule(3, lambda: fired.append(3))
    sim.schedule(100, lambda: fired.append(100))
    sim.run(until=10)
    assert fired == [3]
    assert sim.now == 10
    sim.run()
    assert fired == [3, 100]


def test_finished_updates_on_bounded_runs():
    """run(until=...) must refresh `finished` on its early exit path, not
    leave the previous run's answer behind."""
    sim = Simulator()
    sim.schedule(5, lambda: None)
    sim.run_until_idle()
    assert sim.finished
    sim.schedule(100, lambda: None)
    sim.run(until=10)
    assert not sim.finished          # the cycle-100 event is still pending
    sim.run(until=50)
    assert not sim.finished          # still pending after another bounded run
    sim.run()
    assert sim.finished


def test_finished_true_when_only_cancelled_events_remain_beyond_bound():
    sim = Simulator()
    handle = sim.schedule_cancellable(100, lambda: None)
    handle.cancel()
    sim.run(until=10)
    assert sim.finished              # nothing live remains


def test_nested_scheduling():
    sim = Simulator()
    seen = []

    def outer():
        seen.append(("outer", sim.now))
        sim.schedule(7, lambda: seen.append(("inner", sim.now)))

    sim.schedule(2, outer)
    sim.run_until_idle()
    assert seen == [("outer", 2), ("inner", 9)]


def test_run_until_idle_guards_against_runaway():
    sim = Simulator()

    def rearm():
        sim.schedule(1, rearm)

    sim.schedule(1, rearm)
    with pytest.raises(SimulationError):
        sim.run_until_idle(max_events=100)


def test_seconds_conversion():
    sim = Simulator(cpu_freq_ghz=2.0)
    assert sim.seconds(2e9) == pytest.approx(1.0)


def test_invalid_frequency():
    with pytest.raises(ValueError):
        Simulator(cpu_freq_ghz=0)


def test_reset_clears_state():
    sim = Simulator()
    sim.schedule(5, lambda: None)
    sim.run_until_idle()
    sim.stats.add("x", 3)
    sim.reset()
    assert sim.now == 0
    assert len(sim.events) == 0
    assert sim.stats.counter("x") == 0


def test_schedule_cancellable_forwards_label():
    sim = Simulator()
    handle = sim.schedule_cancellable(5.0, lambda: None, label="flow-timeout")
    assert handle.label == "flow-timeout"
    handle.cancel()
    assert handle.cancelled
    # The unlabeled form keeps working and defaults to an empty label.
    assert sim.schedule_cancellable(1.0, lambda: None).label == ""
