"""Unit tests for the simulator driver.

Execution-behavior tests run against both scheduler backends: the simulator
promises identical event dispatch regardless of which one it was built on.
"""

import pytest

from repro.sim import SimulationError, Simulator
from repro.sim.event_queue import SCHEDULER_BACKENDS, CalendarQueue, EventQueue

BACKENDS = sorted(SCHEDULER_BACKENDS)


@pytest.fixture(params=BACKENDS)
def sim(request):
    return Simulator(scheduler=request.param)


def test_schedule_and_run_advances_time(sim):
    seen = []
    sim.schedule(10, lambda: seen.append(sim.now))
    sim.schedule(5, lambda: seen.append(sim.now))
    end = sim.run_until_idle()
    assert seen == [5, 10]
    assert end == 10
    assert sim.finished


def test_schedule_negative_delay_rejected(sim):
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_in_past_rejected(sim):
    sim.schedule(5, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(1, lambda: None)


def test_run_until_bound(sim):
    fired = []
    sim.schedule(3, lambda: fired.append(3))
    sim.schedule(100, lambda: fired.append(100))
    sim.run(until=10)
    assert fired == [3]
    assert sim.now == 10
    sim.run()
    assert fired == [3, 100]


def test_finished_updates_on_bounded_runs(sim):
    """run(until=...) must refresh `finished` on its early exit path, not
    leave the previous run's answer behind."""
    sim.schedule(5, lambda: None)
    sim.run_until_idle()
    assert sim.finished
    sim.schedule(100, lambda: None)
    sim.run(until=10)
    assert not sim.finished          # the cycle-100 event is still pending
    sim.run(until=50)
    assert not sim.finished          # still pending after another bounded run
    sim.run()
    assert sim.finished


def test_finished_true_when_only_cancelled_events_remain_beyond_bound(sim):
    handle = sim.schedule_cancellable(100, lambda: None)
    handle.cancel()
    sim.run(until=10)
    assert sim.finished              # nothing live remains


def test_finished_updates_when_a_callback_raises(sim):
    """An exception escaping a callback must not leave `finished` reporting
    the previous run's outcome (regression: it was only set on the normal
    exit path)."""
    sim.schedule(1, lambda: None)
    sim.run_until_idle()
    assert sim.finished

    def boom():
        raise RuntimeError("boom")

    sim.schedule(5, boom)
    sim.schedule(10, lambda: None)
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()
    assert not sim.finished          # the cycle-10 event is still pending
    assert sim.executed_events == 2  # the raising event still counted
    sim.run()                        # the queue is still consistent
    assert sim.finished


def test_finished_true_when_the_raising_event_was_the_last(sim):
    def boom():
        raise RuntimeError("boom")

    sim.schedule(5, boom)
    with pytest.raises(RuntimeError):
        sim.run()
    assert sim.finished              # nothing pending after the exception


def test_nested_scheduling(sim):
    seen = []

    def outer():
        seen.append(("outer", sim.now))
        sim.schedule(7, lambda: seen.append(("inner", sim.now)))

    sim.schedule(2, outer)
    sim.run_until_idle()
    assert seen == [("outer", 2), ("inner", 9)]


def test_run_until_idle_guards_against_runaway(sim):
    def rearm():
        sim.schedule(1, rearm)

    sim.schedule(1, rearm)
    with pytest.raises(SimulationError):
        sim.run_until_idle(max_events=100)


def test_seconds_conversion():
    sim = Simulator(cpu_freq_ghz=2.0)
    assert sim.seconds(2e9) == pytest.approx(1.0)


def test_invalid_frequency():
    with pytest.raises(ValueError):
        Simulator(cpu_freq_ghz=0)


def test_reset_clears_state(sim):
    sim.schedule(5, lambda: None)
    sim.run_until_idle()
    sim.stats.add("x", 3)
    sim.reset()
    assert sim.now == 0
    assert len(sim.events) == 0
    assert sim.stats.counter("x") == 0
    # The simulator is fully reusable after a reset, on either backend.
    seen = []
    sim.schedule(2, lambda: seen.append(sim.now))
    sim.run_until_idle()
    assert seen == [2]


def test_schedule_cancellable_forwards_label(sim):
    handle = sim.schedule_cancellable(5.0, lambda: None, label="flow-timeout")
    assert handle.label == "flow-timeout"
    handle.cancel()
    assert handle.cancelled
    # The unlabeled form keeps working and defaults to an empty label.
    assert sim.schedule_cancellable(1.0, lambda: None).label == ""


def test_cancel_across_reset_is_inert(sim):
    """A handle held across Simulator.reset() must see its event as gone and
    stay a no-op — on both backends — instead of corrupting the live count."""
    fired = []
    handle = sim.schedule_cancellable(5, lambda: fired.append("stale"))
    sim.reset()
    assert handle.cancelled
    handle.cancel()
    handle.cancel()
    sim.schedule(1, lambda: fired.append("fresh"))
    sim.run_until_idle()
    assert fired == ["fresh"]
    assert len(sim.events) == 0
    assert sim.finished


def test_cancelled_event_skipped_by_run_loop(sim):
    """The fused run loops must skip cancelled entries without dispatching
    or counting them."""
    fired = []
    handle = sim.schedule_cancellable(5, lambda: fired.append("cancelled"))
    sim.schedule(6, lambda: fired.append("kept"))
    handle.cancel()
    sim.run_until_idle()
    assert fired == ["kept"]
    assert sim.executed_events == 1


# -- scheduler selection ---------------------------------------------------------

def test_scheduler_backend_selection(monkeypatch):
    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    assert isinstance(Simulator().events, EventQueue)
    assert isinstance(Simulator(scheduler="heap").events, EventQueue)
    assert isinstance(Simulator(scheduler="calendar").events, CalendarQueue)
    assert Simulator(scheduler="calendar").scheduler == "calendar"
    with pytest.raises(ValueError, match="unknown scheduler"):
        Simulator(scheduler="splay-tree")


def test_scheduler_env_selection(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
    assert isinstance(Simulator().events, CalendarQueue)
    # An explicit constructor argument beats the environment.
    assert isinstance(Simulator(scheduler="heap").events, EventQueue)
    monkeypatch.delenv("REPRO_SCHEDULER")
    assert isinstance(Simulator().events, EventQueue)


def test_future_backend_runs_through_the_generic_loop(monkeypatch):
    """A backend that is neither the heap nor the calendar queue (the
    C-accelerated-entries slot the ROADMAP reserves) must work out of the box
    via Simulator's generic bound-method loop — interface only, no fused
    loop required."""
    from bisect import insort

    class SortedListQueue:
        """Minimal third backend: the interface, nothing else."""

        def __init__(self):
            self._entries = []
            self._seq = 0
            self._live = 0

        def __len__(self):
            return self._live

        def __bool__(self):
            return self._live > 0

        def push(self, time, callback, label=""):
            if time < 0:
                raise ValueError("negative time")
            insort(self._entries, [time, self._seq, callback])
            self._seq += 1
            self._live += 1

        def peek_time(self):
            for entry in self._entries:
                if entry[2] is not None:
                    return entry[0]
            return None

        def pop(self):
            while self._entries:
                entry = self._entries.pop(0)
                if entry[2] is None:
                    continue
                callback = entry[2]
                entry[2] = None
                self._live -= 1
                return [entry[0], entry[1], callback]
            return None

        def clear(self):
            self._entries.clear()
            self._live = 0

    monkeypatch.setitem(SCHEDULER_BACKENDS, "sorted-list", SortedListQueue)
    sim = Simulator(scheduler="sorted-list")
    assert sim._run_impl == sim._run_generic
    seen = []
    sim.schedule(10, lambda: seen.append(sim.now))
    sim.schedule(5, lambda: (seen.append(sim.now),
                             sim.schedule(1, lambda: seen.append(sim.now))))
    sim.run(until=7)
    assert seen == [5, 6]
    assert not sim.finished
    sim.run()
    assert seen == [5, 6, 10]
    assert sim.finished and sim.executed_events == 3


@pytest.mark.parametrize("scheduler", BACKENDS)
def test_backends_execute_identically(scheduler):
    """One seeded mixed workload of schedules + cancellations must land on
    the same trace and final time on every backend."""
    sim = Simulator(scheduler=scheduler)
    trace = []

    def spawner(depth):
        trace.append((sim.now, depth))
        if depth < 40:
            sim.schedule((depth * 7) % 13 + 0.25, lambda: spawner(depth + 1))
            handle = sim.schedule_cancellable((depth * 3) % 5 + 1,
                                              lambda: trace.append(("x", depth)))
            if depth % 3:
                handle.cancel()

    sim.schedule(0.5, lambda: spawner(0))
    sim.run_until_idle()
    reference_sim = Simulator(scheduler="heap")
    reference = []

    def ref_spawner(depth):
        reference.append((reference_sim.now, depth))
        if depth < 40:
            reference_sim.schedule((depth * 7) % 13 + 0.25,
                                   lambda: ref_spawner(depth + 1))
            handle = reference_sim.schedule_cancellable(
                (depth * 3) % 5 + 1, lambda: reference.append(("x", depth)))
            if depth % 3:
                handle.cancel()

    reference_sim.schedule(0.5, lambda: ref_spawner(0))
    reference_sim.run_until_idle()
    assert trace == reference
    assert sim.now == reference_sim.now
    assert sim.executed_events == reference_sim.executed_events
