"""Unit and property tests for the physical-address mappings."""

import pytest
from hypothesis import given, strategies as st

from repro.mem import DRAMAddressMapping, HMCAddressMapping

addresses = st.integers(min_value=0, max_value=2**40)


def test_hmc_mapping_rejects_invalid_shapes():
    # Non-power-of-two cube counts are legal (exact topology factorizations
    # like a 2x4 mesh produce them); zero/negative counts are not.
    assert HMCAddressMapping(num_cubes=10).num_cubes == 10
    with pytest.raises(ValueError):
        HMCAddressMapping(num_cubes=0)
    with pytest.raises(ValueError):
        HMCAddressMapping(num_vaults=12)
    with pytest.raises(ValueError):
        HMCAddressMapping(cube_interleave=48)


def test_hmc_mapping_non_power_of_two_cubes_stay_in_range():
    mapping = HMCAddressMapping(num_cubes=10)
    cubes = {mapping.cube_of(page * 4096) for page in range(512)}
    assert cubes == set(range(10))


def test_hmc_block_alignment():
    mapping = HMCAddressMapping()
    assert mapping.block_of(0x12345) == 0x12345 // 64 * 64


def test_hmc_interleaves_pages_across_cubes():
    mapping = HMCAddressMapping(num_cubes=16, cube_interleave=4096)
    cubes = {mapping.cube_of(page * 4096) for page in range(256)}
    assert cubes == set(range(16))


def test_hmc_same_page_same_cube():
    mapping = HMCAddressMapping()
    base = 7 * 4096
    assert mapping.cube_of(base) == mapping.cube_of(base + 4095)


@given(addresses)
def test_hmc_coordinates_in_range(addr):
    mapping = HMCAddressMapping()
    assert 0 <= mapping.cube_of(addr) < mapping.num_cubes
    assert 0 <= mapping.vault_of(addr) < mapping.num_vaults
    assert 0 <= mapping.bank_of(addr) < mapping.banks_per_vault
    assert mapping.row_of(addr) >= 0


@given(addresses)
def test_dram_coordinates_in_range(addr):
    mapping = DRAMAddressMapping()
    assert 0 <= mapping.channel_of(addr) < mapping.num_channels
    assert 0 <= mapping.rank_of(addr) < mapping.ranks_per_channel
    assert 0 <= mapping.bank_of(addr) < mapping.banks_per_rank
    assert mapping.row_of(addr) >= 0


@given(addresses)
def test_describe_is_consistent(addr):
    mapping = HMCAddressMapping()
    described = mapping.describe(addr)
    assert described["cube"] == mapping.cube_of(addr)
    assert described["vault"] == mapping.vault_of(addr)


def test_dram_channels_spread_over_consecutive_pages():
    mapping = DRAMAddressMapping(num_channels=4)
    channels = [mapping.channel_of(page * 4096) for page in range(64)]
    assert set(channels) == set(range(4))
    # The XOR hash must not map long runs of consecutive pages to one channel.
    longest_run = max(len(list(run)) for run in _runs(channels))
    assert longest_run < 16


def _runs(values):
    current = []
    for v in values:
        if current and current[-1] != v:
            yield current
            current = []
        current.append(v)
    if current:
        yield current
