"""Unit tests for Component and the SharedResource contention primitive."""

import pytest

from repro.sim import Component, SharedResource, Simulator


def test_component_requires_name(sim):
    with pytest.raises(ValueError):
        Component(sim, "")


def test_component_stats_shortcuts(sim):
    comp = Component(sim, "widget")
    comp.count("hits")
    comp.count("hits", 2)
    comp.observe("lat", 5.0)
    comp.gauge("level", 3.0)
    assert comp.stat("hits") == 3
    assert sim.stats.histogram("widget.lat").mean == 5.0
    assert sim.stats.gauge("widget.level") == 3.0


def test_shared_resource_serializes_requests(sim):
    res = SharedResource(sim, "bus")
    s1, f1 = res.reserve(10)
    s2, f2 = res.reserve(10)
    assert (s1, f1) == (0, 10)
    assert (s2, f2) == (10, 20)
    # Queueing wait is recorded.
    assert sim.stats.counter("bus.queue_wait_cycles") == 10


def test_shared_resource_idle_gap(sim):
    res = SharedResource(sim, "bus")
    res.reserve(5)
    start, finish = res.reserve(5, earliest=100)
    assert start == 100
    assert finish == 105


def test_shared_resource_rejects_negative_occupancy(sim):
    res = SharedResource(sim, "bus")
    with pytest.raises(ValueError):
        res.reserve(-1)


def test_utilization_is_bounded(sim):
    res = SharedResource(sim, "bus")
    res.reserve(10)
    sim.schedule(20, lambda: None)
    sim.run_until_idle()
    assert 0.0 <= res.utilization() <= 1.0
